// Memory-model backends (pram/faults.hpp, docs/fault-models.md): unit
// behaviour of CellFaultMap and SharedMemory under faults, the reliable
// backend's regression guarantee across execution backends, the semantic
// contract of the persistent-cache discipline (write-back reads, amnesia on
// failure, persist()/cadence/halt flushes), format round-trips for the new
// schedule moves / meta keys / checkpoint state, backend-aware audit
// checks, and the determinism matrix — two identical runs, record→replay,
// and checkpoint→resume all land on the identical outcome — for both
// non-reliable models under random, burst, and chaos adversaries.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/audit.hpp"
#include "fault/adversaries.hpp"
#include "pram/engine.hpp"
#include "pram/faults.hpp"
#include "pram/memory.hpp"
#include "programs/programs.hpp"
#include "replay/checkpoint.hpp"
#include "replay/repro.hpp"
#include "replay/schedule.hpp"
#include "test_util.hpp"
#include "writeall/runner.hpp"

namespace rfsp {
namespace {

using ::rfsp::testing::ChaosAdversary;
using ::rfsp::testing::LambdaAdversary;
using ::rfsp::testing::LambdaProgram;

FaultDecision no_faults(const MachineView&) { return {}; }

// --- Names -------------------------------------------------------------------

TEST(MemoryModelNames, RoundTripAndReject) {
  for (MemoryModel m : {MemoryModel::kReliable, MemoryModel::kFaultyCells,
                        MemoryModel::kPersistentCache}) {
    EXPECT_EQ(memory_model_from_string(to_string(m)), m);
  }
  EXPECT_THROW(memory_model_from_string("flaky"), ConfigError);
  EXPECT_THROW(memory_model_from_string(""), ConfigError);
}

// --- CellFaultMap units ------------------------------------------------------

TEST(FaultMap, BuildIsDeterministicAndFullyRemappedUnderAutoSpares) {
  const FaultyCellsOptions opt{.seed = 7, .cells = 5};
  const CellFaultMap a = CellFaultMap::build(opt, 64);
  const CellFaultMap b = CellFaultMap::build(opt, 64);
  EXPECT_EQ(a.static_faults(), 5u);
  EXPECT_EQ(a.spare_cells(), 5u);   // kSparesAuto: every fault absorbed
  EXPECT_EQ(a.unremapped(), 0u);
  std::vector<Addr> spares;
  for (Addr c = 0; c < 64; ++c) {
    EXPECT_EQ(a.is_dead(c), b.is_dead(c));
    EXPECT_EQ(a.is_remapped(c), b.is_remapped(c));
    EXPECT_EQ(a.translate(c), b.translate(c));
    EXPECT_FALSE(a.is_dead(c));  // all remapped, none observably stuck
    if (a.is_remapped(c)) {
      EXPECT_GE(a.translate(c), 64u);  // spares live past the address space
      spares.push_back(a.translate(c));
    } else {
      EXPECT_EQ(a.translate(c), c);
    }
  }
  EXPECT_EQ(spares.size(), 5u);
  std::sort(spares.begin(), spares.end());
  EXPECT_EQ(std::unique(spares.begin(), spares.end()), spares.end());
}

TEST(FaultMap, ExhaustedSparesLeaveDeterministicallyDeadCells) {
  const FaultyCellsOptions opt{.seed = 11, .cells = 6, .spares = 2};
  const CellFaultMap a = CellFaultMap::build(opt, 32);
  const CellFaultMap b = CellFaultMap::build(opt, 32);
  EXPECT_EQ(a.spare_cells(), 2u);
  EXPECT_EQ(a.unremapped(), 4u);
  for (Addr c = 0; c < 32; ++c) {
    EXPECT_EQ(a.is_dead(c), b.is_dead(c));
    if (a.is_dead(c)) {
      EXPECT_EQ(a.garbage(c), b.garbage(c));     // seeded, reproducible
      EXPECT_EQ(a.garbage(c), a.garbage(c));     // and stable per cell
    }
  }
}

TEST(FaultMap, InjectSeversRemapsAndRecordsEffectiveMovesOnly) {
  CellFaultMap map = CellFaultMap::build({.seed = 3, .cells = 2}, 32);
  Addr remapped = 32, ok = 32;
  for (Addr c = 0; c < 32; ++c) {
    if (map.is_remapped(c) && remapped == 32) remapped = c;
    if (!map.is_remapped(c) && !map.is_dead(c) && ok == 32) ok = c;
  }
  ASSERT_LT(remapped, 32u);
  ASSERT_LT(ok, 32u);

  EXPECT_TRUE(map.inject(remapped));  // severs the spare redirection
  EXPECT_TRUE(map.is_dead(remapped));
  EXPECT_EQ(map.unremapped(), 1u);
  EXPECT_FALSE(map.inject(remapped));  // already dead: no-op, not recorded
  EXPECT_TRUE(map.inject(ok));
  EXPECT_EQ(map.unremapped(), 2u);
  EXPECT_EQ(map.injected(), (std::vector<Addr>{remapped, ok}));
}

// --- SharedMemory under a fault map ------------------------------------------

TEST(SharedMemoryFaults, DeadCellsDropWritesAndReturnGarbage) {
  const CellFaultMap map =
      CellFaultMap::build({.seed = 11, .cells = 3, .spares = 0}, 16);
  ASSERT_EQ(map.unremapped(), 3u);
  SharedMemory mem(16, &map);
  for (Addr c = 0; c < 16; ++c) {
    if (map.is_dead(c)) {
      EXPECT_FALSE(mem.write(c, 42));
      EXPECT_EQ(mem.read(c), map.garbage(c));
    } else {
      EXPECT_TRUE(mem.write(c, 42));
      EXPECT_EQ(mem.read(c), 42);
    }
  }
  EXPECT_EQ(mem.dropped_writes(), 3u);
  // The flat whole-memory view is unavailable under a fault map.
  EXPECT_THROW(mem.words(), std::logic_error);
}

TEST(SharedMemoryFaults, RemappedCellsReadBackThroughSpares) {
  const CellFaultMap map = CellFaultMap::build({.seed = 5, .cells = 4}, 32);
  SharedMemory mem(32, &map);
  EXPECT_EQ(mem.storage_size(), 32u + 4u);  // spares appended past the space
  for (Addr c = 0; c < 32; ++c) {
    EXPECT_TRUE(mem.write(c, static_cast<Word>(100 + c)));
  }
  for (Addr c = 0; c < 32; ++c) {
    EXPECT_EQ(mem.read(c), static_cast<Word>(100 + c));
  }
  EXPECT_EQ(mem.dropped_writes(), 0u);
}

// The bounds diagnostic names the offending address and processor (the old
// message reported only the memory size).
TEST(SharedMemoryFaults, BoundsMessageNamesCellAndPid) {
  SharedMemory mem(8);
  try {
    mem.write(99, 1, /*pid=*/3);
    FAIL() << "out-of-bounds write did not throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cell 99"), std::string::npos) << what;
    EXPECT_NE(what.find("memory size 8"), std::string::npos) << what;
    EXPECT_NE(what.find("pid 3"), std::string::npos) << what;
  }
  try {
    (void)mem.read(12);  // engine-internal access: no processor to blame
    FAIL() << "out-of-bounds read did not throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cell 12"), std::string::npos) << what;
    EXPECT_EQ(what.find("pid"), std::string::npos) << what;
  }
}

// --- Engine config gates -----------------------------------------------------

TEST(MemoryModelConfig, IncompatibleModesAreConfigErrors) {
  const WriteAllConfig config{.n = 8, .p = 2};
  const auto program = make_writeall(WriteAllAlgo::kX, config);
  {
    EngineOptions options;
    options.memory_model = MemoryModel::kFaultyCells;
    options.unit_cost_snapshot = true;
    EXPECT_THROW(Engine(*program, options), ConfigError);
  }
  {
    EngineOptions options;
    options.memory_model = MemoryModel::kPersistentCache;
    options.bit_atomic_writes = true;
    EXPECT_THROW(Engine(*program, options), ConfigError);
  }
}

TEST(MemoryModelConfig, ModelMovesRequireTheirModel) {
  const WriteAllConfig config{.n = 8, .p = 2};
  // cell_faults under the (default) reliable model.
  {
    const auto program = make_writeall(WriteAllAlgo::kX, config);
    Engine engine(*program);
    LambdaAdversary adversary([](const MachineView&) {
      FaultDecision d;
      d.cell_faults.push_back(0);
      return d;
    });
    EXPECT_THROW(engine.run(adversary), AdversaryViolation);
  }
  // cache_drop under the faulty-cells model.
  {
    const auto program = make_writeall(WriteAllAlgo::kX, config);
    EngineOptions options;
    options.memory_model = MemoryModel::kFaultyCells;
    options.faulty_cells = {.seed = 1, .cells = 1};
    Engine engine(*program, options);
    LambdaAdversary adversary([](const MachineView&) {
      FaultDecision d;
      d.cache_drop.push_back(0);
      return d;
    });
    EXPECT_THROW(engine.run(adversary), AdversaryViolation);
  }
}

// --- Reliable backend: regression guarantee ----------------------------------

// Selecting kReliable explicitly is the default engine bit for bit, across
// all three execution backends.
TEST(ReliableModel, ExplicitSelectionMatchesDefaultAcrossBackends) {
  const WriteAllConfig config{.n = 64, .p = 8};
  EngineOptions base;
  base.max_slots = 4000;
  ChaosAdversary baseline_adversary(91, /*allow_torn=*/false);
  const WriteAllOutcome baseline =
      run_writeall(WriteAllAlgo::kX, config, baseline_adversary, base);
  ASSERT_TRUE(baseline.solved);

  for (const char* backend : {"sequential", "threads", "batch"}) {
    SCOPED_TRACE(backend);
    EngineOptions options = base;
    options.memory_model = MemoryModel::kReliable;
    if (std::string(backend) == "threads") options.cycle_threads = 4;
    if (std::string(backend) == "batch") options.batch = true;
    ChaosAdversary adversary(91, /*allow_torn=*/false);
    const WriteAllOutcome outcome =
        run_writeall(WriteAllAlgo::kX, config, adversary, options);
    EXPECT_EQ(outcome.run.tally, baseline.run.tally);
    EXPECT_EQ(outcome.solved, baseline.solved);
  }
}

// persist_every = 1 flushes every completed cycle, so for COMMON-disciplined
// programs the persistent-cache model is observably the reliable machine —
// same memory image, same tally apart from the flush count.
TEST(PersistentCache, CadenceOneMatchesReliable) {
  const WriteAllConfig config{.n = 48, .p = 6};
  const auto program = make_writeall(WriteAllAlgo::kX, config);
  EngineOptions reliable_options;
  reliable_options.max_slots = 4000;
  Engine reliable(*program, reliable_options);
  ChaosAdversary reliable_adversary(17, /*allow_torn=*/false);
  const RunResult expect = reliable.run(reliable_adversary);
  ASSERT_TRUE(expect.goal_met);

  EngineOptions cached_options = reliable_options;
  cached_options.memory_model = MemoryModel::kPersistentCache;
  cached_options.persistent_cache = {.persist_every = 1};
  Engine cached(*program, cached_options);
  ChaosAdversary cached_adversary(17, /*allow_torn=*/false);
  const RunResult got = cached.run(cached_adversary);

  EXPECT_GT(got.tally.persists, 0u);
  WorkTally masked = got.tally;
  masked.persists = expect.tally.persists;
  EXPECT_EQ(masked, expect.tally);
  EXPECT_EQ(got.goal_met, expect.goal_met);
  for (Addr c = 0; c < program->memory_size(); ++c) {
    ASSERT_EQ(cached.memory().read(c), reliable.memory().read(c)) << c;
  }
}

// --- Persistent-cache semantics ----------------------------------------------

EngineOptions amnesia_options(std::uint64_t persist_every, Slot max_slots) {
  EngineOptions options;
  options.memory_model = MemoryModel::kPersistentCache;
  options.persistent_cache = {.persist_every = persist_every};
  options.max_slots = max_slots;
  return options;
}

TEST(PersistentCache, FailureDiscardsUnpersistedWrites) {
  // pid 1 idles alive so failing pid 0 cannot strand the machine (2(i)).
  LambdaProgram program(2, 4,
                        [](Pid pid, std::uint64_t cycle, CycleContext& ctx) {
    if (pid == 0 && cycle == 0) ctx.write(0, 5);
    return true;  // never halt: only the cadence/persist()/failure matter
  });
  LambdaAdversary adversary([](const MachineView& view) {
    FaultDecision d;
    if (view.slot() == 1) d.fail_after_cycle.push_back(0);
    if (view.slot() == 3) d.restart.push_back(0);
    return d;
  });
  Engine engine(program, amnesia_options(/*persist_every=*/0, 6));
  const RunResult result = engine.run(adversary);
  EXPECT_TRUE(result.slot_limit);
  EXPECT_EQ(engine.memory().read(0), 0);  // the write died with the cache
  EXPECT_EQ(result.tally.persists, 0u);
}

TEST(PersistentCache, PersistOpPublishesBeforeTheFailure) {
  LambdaProgram program(2, 4,
                        [](Pid pid, std::uint64_t cycle, CycleContext& ctx) {
    if (pid == 0 && cycle == 0) ctx.write(0, 5);
    if (pid == 0 && cycle == 1) ctx.persist();
    return true;
  });
  // pid 0 stays down (pid 1 keeps the machine live): a restart would boot
  // it back to cycle 0 and repeat the write + persist.
  LambdaAdversary adversary([](const MachineView& view) {
    FaultDecision d;
    if (view.slot() == 2) d.fail_after_cycle.push_back(0);
    return d;
  });
  Engine engine(program, amnesia_options(/*persist_every=*/0, 6));
  const RunResult result = engine.run(adversary);
  EXPECT_EQ(engine.memory().read(0), 5);
  EXPECT_EQ(result.tally.persists, 1u);
}

TEST(PersistentCache, HaltFlushesImplicitly) {
  LambdaProgram program(1, 4, [](Pid, std::uint64_t cycle, CycleContext& ctx) {
    if (cycle == 0) {
      ctx.write(0, 5);
      return true;
    }
    return false;  // halt in cycle 1: the implicit flush publishes cell 0
  });
  LambdaAdversary adversary(no_faults);
  Engine engine(program, amnesia_options(/*persist_every=*/0, 8));
  const RunResult result = engine.run(adversary);
  EXPECT_EQ(engine.memory().read(0), 5);
  EXPECT_EQ(result.tally.persists, 1u);
}

// Write-back semantics: a processor reads its own un-persisted writes.
TEST(PersistentCache, ProcessorReadsItsOwnCachedWrites) {
  LambdaProgram program(1, 4, [](Pid, std::uint64_t cycle, CycleContext& ctx) {
    if (cycle == 0) {
      ctx.write(0, 7);
      return true;
    }
    if (cycle == 1) {
      ctx.write(1, ctx.read(0));  // cell 0 is only in the cache here
      return true;
    }
    return false;
  });
  LambdaAdversary adversary(no_faults);
  Engine engine(program, amnesia_options(/*persist_every=*/0, 8));
  engine.run(adversary);
  EXPECT_EQ(engine.memory().read(1), 7);
}

TEST(PersistentCache, CacheDropMoveDiscardsTheCache) {
  LambdaProgram program(1, 4, [](Pid, std::uint64_t cycle, CycleContext& ctx) {
    if (cycle == 0) ctx.write(0, 5);
    return true;
  });
  LambdaAdversary adversary([](const MachineView& view) {
    FaultDecision d;
    if (view.slot() == 1) d.cache_drop.push_back(0);
    return d;
  });
  Engine engine(program, amnesia_options(/*persist_every=*/0, 4));
  const RunResult result = engine.run(adversary);
  EXPECT_EQ(engine.memory().read(0), 0);
  EXPECT_EQ(result.tally.persists, 0u);
}

TEST(PersistentCache, PersistOpIsAModelViolationElsewhere) {
  LambdaProgram program(1, 4, [](Pid, std::uint64_t, CycleContext& ctx) {
    ctx.persist();
    return false;
  });
  LambdaAdversary adversary(no_faults);
  Engine engine(program);
  EXPECT_THROW(engine.run(adversary), ModelViolation);
}

// --- Faulty cells: unsolvable gate -------------------------------------------

TEST(FaultyCells, ExcessDensityIsReportedUnsolvable) {
  const WriteAllConfig config{.n = 32, .p = 4};
  EngineOptions options;
  options.memory_model = MemoryModel::kFaultyCells;
  options.faulty_cells = {.seed = 9, .cells = 3, .spares = 0};
  LambdaAdversary adversary(no_faults);
  const WriteAllOutcome outcome =
      run_writeall(WriteAllAlgo::kX, config, adversary, options);
  EXPECT_TRUE(outcome.unsolvable);
  EXPECT_FALSE(outcome.solved);
  EXPECT_EQ(outcome.run.tally.slots, 0u);  // refused up front, never ran
}

TEST(FaultyCells, RemappedDensitySolvesLikeReliable) {
  const WriteAllConfig config{.n = 64, .p = 8};
  EngineOptions options;
  options.max_slots = 4000;
  options.memory_model = MemoryModel::kFaultyCells;
  options.faulty_cells = {.seed = 9, .cells = 12};  // auto spares: absorbed
  ChaosAdversary adversary(23, /*allow_torn=*/false);
  const WriteAllOutcome outcome =
      run_writeall(WriteAllAlgo::kX, config, adversary, options);
  EXPECT_TRUE(outcome.solved);

  // The remap is free: the tally matches the reliable run move for move.
  EngineOptions reliable = options;
  reliable.memory_model = MemoryModel::kReliable;
  ChaosAdversary again(23, /*allow_torn=*/false);
  const WriteAllOutcome baseline =
      run_writeall(WriteAllAlgo::kX, config, again, reliable);
  EXPECT_EQ(outcome.run.tally, baseline.run.tally);
}

// --- Format round-trips ------------------------------------------------------

TEST(ModelFormats, ScheduleCarriesCellFaultAndCacheDropMoves) {
  FaultSchedule schedule;
  ScheduleEntry entry;
  entry.slot = 4;
  entry.decision.fail_after_cycle = {1};
  entry.decision.cell_faults = {7, 7, 30};
  entry.decision.cache_drop = {0, 2};
  schedule.entries.push_back(entry);
  EXPECT_EQ(schedule.move_count(), 6u);

  const FaultSchedule back = schedule_from_jsonl(schedule_to_jsonl(schedule));
  EXPECT_EQ(back, schedule);
}

TEST(ModelFormats, ReproMetaRoundTripsModelOptions) {
  {
    ReproSpec spec;
    spec.algo = WriteAllAlgo::kX;
    spec.n = 48;
    spec.p = 8;
    spec.memory_model = MemoryModel::kFaultyCells;
    spec.faulty_cells = {.seed = 41, .cells = 6, .spares = 3};
    FaultSchedule schedule;
    write_meta(spec, schedule, ProbeStatus::kSolved);
    const ReproSpec back = spec_from_meta(schedule);
    EXPECT_EQ(back.memory_model, MemoryModel::kFaultyCells);
    EXPECT_EQ(back.faulty_cells.seed, 41u);
    EXPECT_EQ(back.faulty_cells.cells, 6u);
    EXPECT_EQ(back.faulty_cells.spares, 3u);
  }
  {
    ReproSpec spec;
    spec.algo = WriteAllAlgo::kV;
    spec.n = 32;
    spec.p = 4;
    spec.memory_model = MemoryModel::kPersistentCache;
    spec.persistent_cache = {.persist_every = 16};
    FaultSchedule schedule;
    write_meta(spec, schedule, ProbeStatus::kSolved);
    const ReproSpec back = spec_from_meta(schedule);
    EXPECT_EQ(back.memory_model, MemoryModel::kPersistentCache);
    EXPECT_EQ(back.persistent_cache.persist_every, 16u);
  }
  {
    // Reliable specs stamp no model keys: files stay byte-compatible.
    ReproSpec spec;
    spec.algo = WriteAllAlgo::kX;
    spec.n = 8;
    spec.p = 2;
    FaultSchedule schedule;
    write_meta(spec, schedule, ProbeStatus::kSolved);
    EXPECT_FALSE(schedule.meta.contains("memory_model"));
    EXPECT_FALSE(schedule.meta.contains("fault_seed"));
    EXPECT_FALSE(schedule.meta.contains("persist_every"));
  }
}

TEST(ModelFormats, CheckpointCarriesCachesAndInjectedFaults) {
  EngineCheckpoint cp;
  cp.slot = 12;
  cp.tally.persists = 3;
  cp.memory = {1, 2, 3};
  cp.status = {ProcStatus::kLive, ProcStatus::kLive};
  cp.states.emplace_back(std::vector<Word>{1});
  cp.states.emplace_back(std::vector<Word>{2});
  cp.caches.push_back({.entries = {{.addr = 1, .value = -7}},
                       .unpersisted_cycles = 2});
  cp.caches.push_back({});  // trivial but present: must survive verbatim
  cp.injected_faults = {0, 2};

  const std::string text = checkpoint_to_json(cp);
  const EngineCheckpoint back = checkpoint_from_json(text);
  EXPECT_EQ(back, cp);
  EXPECT_EQ(checkpoint_to_json(back), text);  // canonical

  // Reliable checkpoints carry none of the new keys (byte-compatibility
  // with pre-model documents).
  EngineCheckpoint plain;
  plain.slot = 1;
  plain.memory = {0};
  const std::string plain_text = checkpoint_to_json(plain);
  EXPECT_EQ(plain_text.find("\"caches\""), std::string::npos);
  EXPECT_EQ(plain_text.find("\"faults\""), std::string::npos);
  EXPECT_EQ(plain_text.find("\"persists\""), std::string::npos);
}

// --- Backend-aware audit -----------------------------------------------------

TEST(ModelAudit, DeadCellWritesAreFlagged) {
  const FaultyCellsOptions fault_options{.seed = 11, .cells = 3, .spares = 0};
  const CellFaultMap map = CellFaultMap::build(fault_options, 16);
  Addr dead = 16;
  for (Addr c = 0; c < 16; ++c) {
    if (map.is_dead(c)) {
      dead = c;
      break;
    }
  }
  ASSERT_LT(dead, 16u);

  LambdaProgram program(1, 16, [dead](Pid, std::uint64_t, CycleContext& ctx) {
    ctx.write(dead, 1);
    return false;
  });
  Auditor auditor;
  EngineOptions options;
  options.memory_model = MemoryModel::kFaultyCells;
  options.faulty_cells = fault_options;
  options.audit = &auditor;
  options.max_slots = 8;
  Engine engine(program, options);
  LambdaAdversary adversary(no_faults);
  engine.run(adversary);
  EXPECT_EQ(auditor.report().count(AuditCheck::kDeadWrite), 1u);
}

// The amnesia twin must read through the audited processor's real cache —
// otherwise every cached read under the persistent model would diff against
// the twin and drown the report in false positives.
TEST(ModelAudit, PersistentCacheRunsAuditClean) {
  const WriteAllConfig config{.n = 32, .p = 4};
  Auditor auditor;
  EngineOptions options;
  options.memory_model = MemoryModel::kPersistentCache;
  options.persistent_cache = {.persist_every = 4};
  options.audit = &auditor;
  options.max_slots = 4000;
  RandomAdversary adversary(7, {.fail_prob = 0.08, .restart_prob = 0.6});
  const WriteAllOutcome outcome =
      run_writeall(WriteAllAlgo::kX, config, adversary, options);
  EXPECT_TRUE(outcome.solved);
  EXPECT_EQ(auditor.report().total(), 0u)
      << to_string(auditor.report().violations.front().check) << ": "
      << auditor.report().violations.front().detail;
}

// --- Determinism matrix ------------------------------------------------------

// One run's observable outcome, violations included: the determinism
// contract is "bit-identical or identically broken".
struct Observed {
  bool ran = false;
  bool solved = false;
  bool slot_limit = false;
  bool deadlock = false;
  WorkTally tally;
  std::string error;

  bool operator==(const Observed&) const = default;
};

Observed observe(WriteAllAlgo algo, const WriteAllConfig& config,
                 Adversary& adversary, const EngineOptions& options,
                 const EngineCheckpoint* resume = nullptr) {
  Observed o;
  try {
    const WriteAllOutcome outcome =
        run_writeall(algo, config, adversary, options, resume);
    o.ran = true;
    o.solved = outcome.solved;
    o.slot_limit = outcome.run.slot_limit;
    o.deadlock = outcome.run.deadlock;
    o.tally = outcome.run.tally;
  } catch (const ModelViolation& e) {
    o.error = std::string("model: ") + e.what();
  } catch (const AdversaryViolation& e) {
    o.error = std::string("adversary: ") + e.what();
  }
  return o;
}

std::unique_ptr<Adversary> make_model_adversary(const std::string& name,
                                                std::uint64_t seed,
                                                MemoryModel model,
                                                Addr memory_size) {
  if (name == "random") {
    return std::make_unique<RandomAdversary>(
        seed, RandomAdversaryOptions{.fail_prob = 0.1, .restart_prob = 0.6});
  }
  if (name == "burst") {
    return std::make_unique<BurstAdversary>(
        BurstAdversaryOptions{.period = 3, .count = 3});
  }
  return std::make_unique<ChaosAdversary>(seed, /*allow_torn=*/false, model,
                                          memory_size);
}

// Straight run == re-run == record→replay == checkpoint→resume, per model
// and adversary. Chaos plays the model-specific moves (cell_faults /
// cache_drop) too, so the new schedule arrays and checkpoint state are on
// the replay/resume path, not just in format unit tests.
void check_model_determinism(MemoryModel model, const std::string& adversary,
                             std::uint64_t seed) {
  SCOPED_TRACE(std::string(to_string(model)) + " x " + adversary);
  const WriteAllConfig config{.n = 48, .p = 8};
  EngineOptions options;
  // Bounded: injected cell faults can strike goal cells, making the
  // instance silently unsolvable — the run must then stop at the slot
  // limit, identically everywhere.
  options.max_slots = 3000;
  options.memory_model = model;
  if (model == MemoryModel::kFaultyCells) {
    options.faulty_cells = {.seed = seed, .cells = 6};
  } else {
    options.persistent_cache = {.persist_every = 4};
  }
  const Addr memory_size =
      make_writeall(WriteAllAlgo::kX, config)->memory_size();

  const auto straight_adversary =
      make_model_adversary(adversary, seed, model, memory_size);
  const Observed straight =
      observe(WriteAllAlgo::kX, config, *straight_adversary, options);

  // Re-run: same seed, same outcome.
  const auto again_adversary =
      make_model_adversary(adversary, seed, model, memory_size);
  EXPECT_EQ(observe(WriteAllAlgo::kX, config, *again_adversary, options),
            straight);

  // Record → replay, with checkpoints captured along the way.
  FaultSchedule schedule;
  std::vector<EngineCheckpoint> checkpoints;
  EngineOptions recording = options;
  recording.checkpoint_every = 7;
  recording.on_checkpoint = [&](const EngineCheckpoint& cp) {
    checkpoints.push_back(cp);
  };
  const auto recorded_adversary =
      make_model_adversary(adversary, seed, model, memory_size);
  RecordingAdversary recorder(*recorded_adversary, schedule);
  EXPECT_EQ(observe(WriteAllAlgo::kX, config, recorder, recording), straight)
      << "checkpoint capture or recording perturbed the run";

  ReplayAdversary replayer(schedule);
  EXPECT_EQ(observe(WriteAllAlgo::kX, config, replayer, options), straight);

  // Resume from a sample of the captured checkpoints.
  for (std::size_t i = 0; i < checkpoints.size();
       i += std::max<std::size_t>(checkpoints.size() / 4, 1)) {
    const EngineCheckpoint& cp = checkpoints[i];
    const auto resumed_adversary =
        make_model_adversary(adversary, seed, model, memory_size);
    EXPECT_EQ(observe(WriteAllAlgo::kX, config, *resumed_adversary, options,
                      &cp),
              straight)
        << "resume from slot " << cp.slot << " diverged";
  }
}

TEST(ModelDeterminism, FaultyCellsUnderRandom) {
  check_model_determinism(MemoryModel::kFaultyCells, "random", 1001);
}
TEST(ModelDeterminism, FaultyCellsUnderBurst) {
  check_model_determinism(MemoryModel::kFaultyCells, "burst", 1002);
}
TEST(ModelDeterminism, FaultyCellsUnderChaos) {
  check_model_determinism(MemoryModel::kFaultyCells, "chaos", 1003);
}
TEST(ModelDeterminism, PersistentCacheUnderRandom) {
  check_model_determinism(MemoryModel::kPersistentCache, "random", 2001);
}
TEST(ModelDeterminism, PersistentCacheUnderBurst) {
  check_model_determinism(MemoryModel::kPersistentCache, "burst", 2002);
}
TEST(ModelDeterminism, PersistentCacheUnderChaos) {
  check_model_determinism(MemoryModel::kPersistentCache, "chaos", 2003);
}

// Non-reliable models force the interpreter: requesting the batched backend
// must not change a single observable.
TEST(ModelDeterminism, BatchRequestFallsBackIdentically) {
  const WriteAllConfig config{.n = 48, .p = 8};
  EngineOptions options;
  options.max_slots = 3000;
  options.memory_model = MemoryModel::kPersistentCache;
  options.persistent_cache = {.persist_every = 4};
  ChaosAdversary a(55, false, MemoryModel::kPersistentCache, 0);
  const Observed interpreted =
      observe(WriteAllAlgo::kX, config, a, options);
  options.batch = true;
  ChaosAdversary b(55, false, MemoryModel::kPersistentCache, 0);
  EXPECT_EQ(observe(WriteAllAlgo::kX, config, b, options), interpreted);
}

// End-to-end reproducer: a recorded faulty-cells run re-probes to its
// recorded status from the meta alone.
TEST(ModelDeterminism, ProbeReplaysFromMetaAlone) {
  const WriteAllConfig config{.n = 48, .p = 8};
  EngineOptions options;
  options.max_slots = 3000;
  options.memory_model = MemoryModel::kFaultyCells;
  options.faulty_cells = {.seed = 77, .cells = 6};
  const Addr memory_size =
      make_writeall(WriteAllAlgo::kX, config)->memory_size();
  ChaosAdversary inner(77, false, MemoryModel::kFaultyCells, memory_size);
  FaultSchedule schedule;
  RecordingAdversary recorder(inner, schedule);
  const Observed straight =
      observe(WriteAllAlgo::kX, config, recorder, options);
  ASSERT_TRUE(straight.ran);

  ReproSpec spec;
  spec.algo = WriteAllAlgo::kX;
  spec.n = config.n;
  spec.p = config.p;
  spec.max_slots = options.max_slots;
  spec.memory_model = options.memory_model;
  spec.faulty_cells = options.faulty_cells;
  write_meta(spec, schedule,
             straight.solved ? ProbeStatus::kSolved : ProbeStatus::kUnsolved);

  // A fresh spec parsed back from the meta reproduces the run.
  const FaultSchedule reparsed =
      schedule_from_jsonl(schedule_to_jsonl(schedule));
  const ProbeResult result = probe(spec_from_meta(reparsed), reparsed);
  EXPECT_EQ(result.status, straight.solved ? ProbeStatus::kSolved
                                           : ProbeStatus::kUnsolved);
  EXPECT_EQ(result.tally, straight.tally);
}

}  // namespace
}  // namespace rfsp
