// Systematic small-instance sweeps: instead of sampling adversities, walk
// grids of scripted fault patterns (every victim × every strike slot ×
// several restart delays) against every fault-tolerant algorithm, plus
// cross-cutting accounting invariants that must hold on every run.
#include <gtest/gtest.h>

#include <tuple>

#include "fault/adversaries.hpp"
#include "writeall/runner.hpp"

namespace rfsp {
namespace {

// One scripted failure (and optional restart) of one processor.
WriteAllOutcome run_single_fault(WriteAllAlgo algo, Addr n, Pid p, Pid victim,
                                 Slot when, Slot restart_delay,
                                 bool restart) {
  FaultPattern pattern;
  pattern.add(FaultTag::kFailure, victim, when);
  if (restart) pattern.add(FaultTag::kRestart, victim, when + restart_delay);
  ScheduledAdversary adversary(std::move(pattern));
  EngineOptions options;
  options.max_slots = 1 << 16;
  return run_writeall(algo, {.n = n, .p = p, .seed = 3}, adversary, options);
}

using SweepParam = std::tuple<WriteAllAlgo, Addr>;

class SingleFaultSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SingleFaultSweep, EveryVictimEverySlot) {
  const auto [algo, n] = GetParam();
  const Pid p = static_cast<Pid>(n < 4 ? n : n / 2);
  std::size_t runs = 0;
  for (Pid victim = 0; victim < p; ++victim) {
    for (Slot when = 0; when < 14; ++when) {
      for (const Slot delay : {Slot{1}, Slot{5}}) {
        const auto out =
            run_single_fault(algo, n, p, victim, when, delay, true);
        ASSERT_TRUE(out.solved)
            << to_string(algo) << " n=" << n << " victim=" << victim
            << " slot=" << when << " delay=" << delay;
        ++runs;
      }
      // Permanent crash (no restart): tolerated whenever p > 1; with p == 1
      // the scheduled adversary self-clamps the failure away.
      const auto out =
          run_single_fault(algo, n, p, victim, when, 0, false);
      ASSERT_TRUE(out.solved)
          << to_string(algo) << " crash-only victim=" << victim
          << " slot=" << when;
      ++runs;
    }
  }
  EXPECT_GE(runs, 14u * 3u);  // the sweep actually swept
}

INSTANTIATE_TEST_SUITE_P(
    RobustAlgos, SingleFaultSweep,
    ::testing::Combine(::testing::ValuesIn(robust_writeall_algos()),
                       ::testing::Values<Addr>(2, 9, 16)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

TEST(DoubleFaultSweep, PairsOfStrikesOnX) {
  // Two scripted failures with restarts, across a slot grid: the stable
  // w[] recovery must compose.
  const Addr n = 16;
  const Pid p = 8;
  for (Slot first = 0; first < 10; first += 2) {
    for (Slot gap = 1; gap <= 7; gap += 3) {
      for (Pid v1 = 0; v1 < p; v1 += 3) {
        const Pid v2 = (v1 + 1) % p;
        FaultPattern pattern;
        pattern.add(FaultTag::kFailure, v1, first);
        pattern.add(FaultTag::kFailure, v2, first + gap);
        pattern.add(FaultTag::kRestart, v1, first + gap);
        pattern.add(FaultTag::kRestart, v2, first + gap + 2);
        ScheduledAdversary adversary(std::move(pattern));
        const auto out = run_writeall(WriteAllAlgo::kX,
                                      {.n = n, .p = p, .seed = 1}, adversary);
        ASSERT_TRUE(out.solved)
            << "first=" << first << " gap=" << gap << " v1=" << v1;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Accounting invariants that must hold on every run of every algorithm.

TEST(AccountingInvariants, HoldAcrossAlgorithmsAndAdversaries) {
  for (WriteAllAlgo algo : robust_writeall_algos()) {
    for (const double fail : {0.0, 0.1, 0.4}) {
      RandomAdversary adversary(
          41, {.fail_prob = fail, .restart_prob = 0.6,
               .fail_after_frac = 0.25});
      EngineOptions options;
      options.record_trace = true;
      const auto out = run_writeall(
          algo, {.n = 200, .p = 50, .seed = 2}, adversary, options);
      ASSERT_TRUE(out.solved) << to_string(algo) << " fail=" << fail;
      const auto& t = out.run.tally;

      // S' - S = cycles aborted mid-flight <= failure events.
      EXPECT_GE(t.attempted_work, t.completed_work);
      EXPECT_LE(t.attempted_work - t.completed_work, t.failures);
      // Restarts never exceed failures (each revives a prior failure).
      EXPECT_LE(t.restarts, t.failures);
      // Peak concurrency is bounded by P; some slot ran at least 1.
      EXPECT_GE(t.peak_live, 1u);
      EXPECT_LE(t.peak_live, 50u);
      // The trace decomposes the tallies exactly.
      std::uint64_t s = 0, sp = 0;
      for (const SlotStats& slot : out.run.trace) {
        s += slot.completed;
        sp += slot.started;
        EXPECT_LE(slot.completed, slot.started);
      }
      EXPECT_EQ(s, t.completed_work);
      EXPECT_EQ(sp, t.attempted_work);
      // At least N cycles were needed to write N cells.
      EXPECT_GE(t.completed_work, 200u);
    }
  }
}

TEST(LeafSizeOverride, VSolvesAcrossTheSweep) {
  // V only records progress when a processor survives a whole iteration of
  // ~2 log L + B slots, so the failure rate is scaled to keep every swept
  // B survivable (the B ≫ log N regime under heavy failure is genuinely
  // non-terminating — that trade-off is the E11c ablation's subject, and
  // the combined VX below also covers it via the X half).
  for (Addr b : {Addr{1}, Addr{2}, Addr{5}, Addr{30}}) {
    RandomAdversary adversary(7, {.fail_prob = 0.04, .restart_prob = 0.6});
    const auto out = run_writeall(
        WriteAllAlgo::kV, {.n = 300, .p = 30, .seed = 1, .leaf_elems = b},
        adversary);
    ASSERT_TRUE(out.solved) << "V B=" << b;
  }
  // The combined algorithm tolerates even unsurvivable-for-V leaf sizes:
  // the X half terminates regardless (Theorem 4.9's point).
  for (Addr b : {Addr{64}, Addr{500}}) {
    RandomAdversary adversary(7, {.fail_prob = 0.1, .restart_prob = 0.6});
    const auto out = run_writeall(
        WriteAllAlgo::kCombinedVX,
        {.n = 300, .p = 30, .seed = 1, .leaf_elems = b}, adversary);
    ASSERT_TRUE(out.solved) << "VX B=" << b;
  }
}

TEST(LeafSizeOverride, ExtremesMatchStructure) {
  // B = n: a single leaf holding everything; B = 1: one element per leaf.
  NoFailures none;
  for (Addr b : {Addr{1}, Addr{300}}) {
    const auto out = run_writeall(
        WriteAllAlgo::kV, {.n = 300, .p = 10, .seed = 1, .leaf_elems = b},
        none);
    EXPECT_TRUE(out.solved) << "B=" << b;
  }
}

}  // namespace
}  // namespace rfsp
