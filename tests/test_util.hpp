// Shared helpers for the rfsp test suite: tiny configurable programs and
// adversaries for exercising engine semantics in isolation.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>

#include "fault/adversary.hpp"
#include "pram/engine.hpp"
#include "pram/program.hpp"
#include "util/rng.hpp"

namespace rfsp::testing {

// A decision fuzzer mixing every legal adversary move: mid-cycle failures,
// post-write failures, fail-then-restart in one slot, delayed restarts, and
// (when allowed) torn writes — self-clamped to constraint 2(i). Shared by
// the chaos sweep (chaos_test) and the record/replay determinism matrix
// (replay_test); checkpoint-safe via the RNG state hooks.
class ChaosAdversary final : public Adversary {
 public:
  ChaosAdversary(std::uint64_t seed, bool allow_torn,
                 MemoryModel memory_model = MemoryModel::kReliable,
                 Addr memory_size = 0)
      : rng_(seed), allow_torn_(allow_torn), memory_model_(memory_model),
        memory_size_(memory_size) {}

  std::string_view name() const override { return "chaos"; }

  FaultDecision decide(const MachineView& view) override {
    FaultDecision d;
    std::vector<Pid> started;
    for (Pid pid = 0; pid < view.processors(); ++pid) {
      if (view.trace(pid).started) started.push_back(pid);
    }

    // Keep at least one mid-cycle survivor (constraint 2(i)).
    std::size_t abortable = started.empty() ? 0 : started.size() - 1;
    for (const Pid pid : started) {
      if (!rng_.chance(0.25)) continue;
      const double move = rng_.uniform();
      if (move < 0.4 && abortable > 0) {
        d.fail_mid_cycle.push_back(pid);
        --abortable;
        if (rng_.chance(0.7)) d.restart.push_back(pid);  // same-slot revive
      } else if (move < 0.6) {
        d.fail_after_cycle.push_back(pid);
        if (rng_.chance(0.5)) d.restart.push_back(pid);
      } else if (allow_torn_ && abortable > 0 &&
                 !view.trace(pid).writes.empty()) {
        const std::size_t idx = rng_.below(view.trace(pid).writes.size());
        d.torn.push_back({pid, idx, static_cast<unsigned>(rng_.below(33))});
        --abortable;
        if (rng_.chance(0.7)) d.restart.push_back(pid);
      }
    }
    // Revive older casualties sluggishly.
    for (Pid pid = 0; pid < view.processors(); ++pid) {
      if (view.status(pid) == ProcStatus::kFailed && rng_.chance(0.4)) {
        d.restart.push_back(pid);
      }
    }
    // Never strand the machine (constraint 2(i)): fail_after_cycle carries
    // no mid-cycle clamp, so the decision can leave zero live processors —
    // certain with p = 1. Revive one casualty if so.
    const auto in = [](const std::vector<Pid>& v, Pid pid) {
      return std::find(v.begin(), v.end(), pid) != v.end();
    };
    bool any_live = false;
    for (Pid pid = 0; pid < view.processors(); ++pid) {
      if (view.status(pid) == ProcStatus::kHalted) continue;
      const bool downed = view.status(pid) == ProcStatus::kFailed ||
                          in(d.fail_mid_cycle, pid) ||
                          in(d.fail_after_cycle, pid);
      if (!downed || in(d.restart, pid)) {
        any_live = true;
        break;
      }
    }
    if (!any_live) {
      for (Pid pid = 0; pid < view.processors(); ++pid) {
        if (view.status(pid) == ProcStatus::kHalted) continue;
        if (!in(d.restart, pid)) {
          d.restart.push_back(pid);
          break;
        }
      }
    }
    // Memory-model moves (pram/faults.hpp): kill a few random shared cells
    // under faulty-cells (duplicates and already-dead cells are legal
    // no-ops), drop a started processor's write-back cache under
    // persistent-cache. Neither interacts with the liveness clamp above.
    if (memory_model_ == MemoryModel::kFaultyCells && memory_size_ > 0 &&
        rng_.chance(0.05)) {
      const std::size_t count = 1 + rng_.below(3);
      for (std::size_t i = 0; i < count; ++i) {
        d.cell_faults.push_back(static_cast<Addr>(rng_.below(memory_size_)));
      }
    }
    if (memory_model_ == MemoryModel::kPersistentCache && rng_.chance(0.1)) {
      for (const Pid pid : started) {
        if (in(d.fail_mid_cycle, pid) || in(d.fail_after_cycle, pid)) continue;
        bool torn_victim = false;
        for (const TornWrite& tear : d.torn) torn_victim |= tear.pid == pid;
        if (torn_victim) continue;
        if (!rng_.chance(0.3)) continue;
        d.cache_drop.push_back(pid);
      }
    }
    return d;
  }

  void save_state(std::vector<std::uint64_t>& out) const override {
    for (const std::uint64_t w : rng_.state()) out.push_back(w);
  }
  void load_state(std::span<const std::uint64_t> data) override {
    if (data.size() >= 4) rng_.set_state({data[0], data[1], data[2], data[3]});
  }

 private:
  Rng rng_;
  bool allow_torn_;
  MemoryModel memory_model_;
  Addr memory_size_;
};

// A program whose per-processor behaviour is a lambda (pid, cycle#, ctx) ->
// keep_running. Cycle numbers restart from 0 after a failure (boot builds a
// fresh counter), which mirrors real private-state loss.
class LambdaProgram final : public Program {
 public:
  using Body = std::function<bool(Pid, std::uint64_t, CycleContext&)>;

  LambdaProgram(Pid processors, Addr memory, Body body,
                std::function<bool(const SharedMemory&)> goal = nullptr)
      : processors_(processors), memory_(memory), body_(std::move(body)),
        goal_(std::move(goal)) {}

  std::string_view name() const override { return "lambda"; }
  Pid processors() const override { return processors_; }
  Addr memory_size() const override { return memory_; }

  std::unique_ptr<ProcessorState> boot(Pid pid) const override {
    class State final : public ProcessorState {
     public:
      State(const LambdaProgram& program, Pid pid)
          : program_(program), pid_(pid) {}
      bool cycle(CycleContext& ctx) override {
        return program_.body_(pid_, counter_++, ctx);
      }

     private:
      const LambdaProgram& program_;
      Pid pid_;
      std::uint64_t counter_ = 0;
    };
    return std::make_unique<State>(*this, pid);
  }

  bool goal(const SharedMemory& mem) const override {
    return goal_ ? goal_(mem) : false;
  }

 private:
  Pid processors_;
  Addr memory_;
  Body body_;
  std::function<bool(const SharedMemory&)> goal_;
};

// An adversary whose per-slot decision is a lambda over the MachineView.
class LambdaAdversary final : public Adversary {
 public:
  using Decide = std::function<FaultDecision(const MachineView&)>;

  explicit LambdaAdversary(Decide decide) : decide_(std::move(decide)) {}

  std::string_view name() const override { return "lambda"; }
  FaultDecision decide(const MachineView& view) override {
    return decide_(view);
  }

 private:
  Decide decide_;
};

}  // namespace rfsp::testing
