// Shared helpers for the rfsp test suite: tiny configurable programs and
// adversaries for exercising engine semantics in isolation.
#pragma once

#include <functional>
#include <memory>

#include "fault/adversary.hpp"
#include "pram/engine.hpp"
#include "pram/program.hpp"

namespace rfsp::testing {

// A program whose per-processor behaviour is a lambda (pid, cycle#, ctx) ->
// keep_running. Cycle numbers restart from 0 after a failure (boot builds a
// fresh counter), which mirrors real private-state loss.
class LambdaProgram final : public Program {
 public:
  using Body = std::function<bool(Pid, std::uint64_t, CycleContext&)>;

  LambdaProgram(Pid processors, Addr memory, Body body,
                std::function<bool(const SharedMemory&)> goal = nullptr)
      : processors_(processors), memory_(memory), body_(std::move(body)),
        goal_(std::move(goal)) {}

  std::string_view name() const override { return "lambda"; }
  Pid processors() const override { return processors_; }
  Addr memory_size() const override { return memory_; }

  std::unique_ptr<ProcessorState> boot(Pid pid) const override {
    class State final : public ProcessorState {
     public:
      State(const LambdaProgram& program, Pid pid)
          : program_(program), pid_(pid) {}
      bool cycle(CycleContext& ctx) override {
        return program_.body_(pid_, counter_++, ctx);
      }

     private:
      const LambdaProgram& program_;
      Pid pid_;
      std::uint64_t counter_ = 0;
    };
    return std::make_unique<State>(*this, pid);
  }

  bool goal(const SharedMemory& mem) const override {
    return goal_ ? goal_(mem) : false;
  }

 private:
  Pid processors_;
  Addr memory_;
  Body body_;
  std::function<bool(const SharedMemory&)> goal_;
};

// An adversary whose per-slot decision is a lambda over the MachineView.
class LambdaAdversary final : public Adversary {
 public:
  using Decide = std::function<FaultDecision(const MachineView&)>;

  explicit LambdaAdversary(Decide decide) : decide_(std::move(decide)) {}

  std::string_view name() const override { return "lambda"; }
  FaultDecision decide(const MachineView& view) override {
    return decide_(view);
  }

 private:
  Decide decide_;
};

}  // namespace rfsp::testing
