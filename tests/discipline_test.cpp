// The memory-discipline checker and ARBITRARY-CRCW simulation support
// (Theorem 4.1's per-variant statement, Remark 4's PRIORITY exclusion).
#include <gtest/gtest.h>

#include "fault/adversaries.hpp"
#include "programs/programs.hpp"
#include "sim/discipline.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rfsp {
namespace {

std::vector<Word> values(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Word> v(n);
  for (auto& w : v) w = static_cast<Word>(rng.below(100));
  return v;
}

TEST(Discipline, PrefixSumIsCrewButNotErew) {
  PrefixSumProgram program(values(16, 1));
  EXPECT_TRUE(check_discipline(program, CrcwModel::kCommon).ok);
  EXPECT_TRUE(check_discipline(program, CrcwModel::kCrew).ok);
  // Cell j is read by processors j and j + 2^t in one step.
  const DisciplineReport erew = check_discipline(program, CrcwModel::kErew);
  EXPECT_FALSE(erew.ok);
  EXPECT_EQ(erew.violation, "concurrent read under EREW");
}

TEST(Discipline, StencilIsCrew) {
  StencilProgram program({0, 5, 9, 3, 0}, 4);
  EXPECT_TRUE(check_discipline(program, CrcwModel::kCrew).ok);
  EXPECT_FALSE(check_discipline(program, CrcwModel::kErew).ok);
}

TEST(Discipline, LeaderElectionNeedsArbitrary) {
  LeaderElectProgram program(8);
  EXPECT_TRUE(check_discipline(program, CrcwModel::kArbitrary).ok);
  const DisciplineReport common =
      check_discipline(program, CrcwModel::kCommon);
  EXPECT_FALSE(common.ok);
  EXPECT_EQ(common.violation, "COMMON writers disagree");
  EXPECT_EQ(common.step, 0u);
  EXPECT_EQ(common.cell, 0u);
}

TEST(Discipline, MaxReduceIsCommonSafe) {
  MaxReduceProgram program(values(20, 2));
  EXPECT_TRUE(check_discipline(program, CrcwModel::kCommon).ok);
}

TEST(Discipline, WeakCrcwSemantics) {
  // A program whose only concurrent writes carry the designated value 1.
  class WeakWriters final : public SimProgram {
   public:
    std::string_view name() const override { return "weak"; }
    Pid processors() const override { return 4; }
    Addr memory_cells() const override { return 4; }
    Step steps() const override { return 2; }
    void step(StepContext& ctx, Pid j, Step t) const override {
      if (t == 0) {
        ctx.store(0, 1);  // everyone writes the designated value
      } else {
        ctx.store(1 + static_cast<Addr>(j) % 3,
                  static_cast<Word>(j + 5));  // j=0 and j=3 collide on cell 1
      }
    }
    unsigned registers() const override { return 0; }
  };
  WeakWriters program;
  EXPECT_TRUE(check_discipline(program, CrcwModel::kWeak).ok ==
              false);  // step 1: concurrent non-designated writes
  const DisciplineReport report =
      check_discipline(program, CrcwModel::kWeak);
  EXPECT_EQ(report.step, 1u);

  // Confining it to step 0 alone passes WEAK but fails nothing else weaker.
  class OnlyOnes final : public SimProgram {
   public:
    std::string_view name() const override { return "ones"; }
    Pid processors() const override { return 4; }
    Addr memory_cells() const override { return 2; }
    Step steps() const override { return 1; }
    void step(StepContext& ctx, Pid, Step) const override { ctx.store(0, 1); }
    unsigned registers() const override { return 0; }
  };
  OnlyOnes ones;
  EXPECT_TRUE(check_discipline(ones, CrcwModel::kWeak).ok);
  EXPECT_FALSE(check_discipline(ones, CrcwModel::kCrew).ok);
}

TEST(ArbitrarySim, LeaderElectionFaultFree) {
  LeaderElectProgram program(16);
  NoFailures none;
  const SimResult r = simulate(program, none, {.physical_processors = 16});
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(program.verify(r.memory));
}

TEST(ArbitrarySim, LeaderElectionUnderRestartStorms) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    LeaderElectProgram program(24);
    RandomAdversary adversary(seed * 131,
                              {.fail_prob = 0.15, .restart_prob = 0.5});
    const SimResult r =
        simulate(program, adversary, {.physical_processors = 8});
    ASSERT_TRUE(r.completed) << "seed=" << seed;
    // The elected leader may differ from the fault-free run (ARBITRARY),
    // but it must be a single consistent choice.
    EXPECT_TRUE(program.verify(r.memory)) << "seed=" << seed;
  }
}

TEST(ArbitrarySim, CommonProgramsUnaffectedByMarkerMachinery) {
  // A COMMON program's layout carries no marker region.
  PrefixSumProgram program(values(8, 3));
  const SimLayout layout(program, 4);
  EXPECT_EQ(layout.commit_marker_cells, 0u);

  LeaderElectProgram arbitrary(8);
  const SimLayout alayout(arbitrary, 4);
  EXPECT_EQ(alayout.commit_marker_cells, alayout.data_cells);
}

TEST(ArbitrarySim, ConnectedComponentsFaultFree) {
  // Two triangles plus an isolated vertex, linked by one bridge.
  ConnectedComponentsProgram program(
      7, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}});
  EXPECT_TRUE(check_discipline(program, CrcwModel::kArbitrary).ok);
  NoFailures none;
  const SimResult r = simulate(program, none, {.physical_processors = 7});
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(program.verify(r.memory));
  // Vertices 0..5 share component 0; vertex 6 is alone.
  for (Pid v = 0; v < 6; ++v) EXPECT_EQ(r.memory[v], 0) << v;
  EXPECT_EQ(r.memory[6], 6);
}

TEST(ArbitrarySim, ConnectedComponentsUnderRestartStorms) {
  // Random graphs across seeds: fragmented components, chains, cliques.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed * 977);
    const Pid n = 24;
    std::vector<std::pair<Pid, Pid>> edges;
    for (int e = 0; e < 20; ++e) {
      edges.emplace_back(static_cast<Pid>(rng.below(n)),
                         static_cast<Pid>(rng.below(n)));
    }
    ConnectedComponentsProgram program(n, edges);
    RandomAdversary adversary(seed * 31,
                              {.fail_prob = 0.1, .restart_prob = 0.5});
    const SimResult r =
        simulate(program, adversary, {.physical_processors = 8});
    ASSERT_TRUE(r.completed) << "seed=" << seed;
    EXPECT_TRUE(program.verify(r.memory)) << "seed=" << seed;
  }
}

TEST(ArbitrarySim, PriorityProgramsRejected) {
  class PriorityProgram final : public SimProgram {
   public:
    std::string_view name() const override { return "priority"; }
    Pid processors() const override { return 2; }
    Addr memory_cells() const override { return 2; }
    Step steps() const override { return 1; }
    void step(StepContext& ctx, Pid j, Step) const override {
      ctx.store(0, j);
    }
    CrcwModel discipline() const override { return CrcwModel::kPriority; }
    unsigned registers() const override { return 0; }
  };
  PriorityProgram program;
  NoFailures none;
  EXPECT_THROW(simulate(program, none), ConfigError);  // Remark 4
}

TEST(ArbitrarySim, CommonViolatingProgramTripsTheEngine) {
  // A program that claims COMMON but writes conflicting values must be
  // caught by the machine itself, not silently resolved.
  class Liar final : public SimProgram {
   public:
    std::string_view name() const override { return "liar"; }
    Pid processors() const override { return 2; }
    Addr memory_cells() const override { return 2; }
    Step steps() const override { return 1; }
    void step(StepContext& ctx, Pid j, Step) const override {
      ctx.store(0, static_cast<Word>(j + 1));
    }
    unsigned registers() const override { return 0; }
  };
  Liar program;
  NoFailures none;
  EXPECT_THROW(simulate(program, none, {.physical_processors = 2}),
               ModelViolation);
}

}  // namespace
}  // namespace rfsp
