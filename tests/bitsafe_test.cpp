// Bit-atomic writes (§2.1's relaxed assumption) and the BitSafeCell
// conversion: torn word writes corrupt naive cells but never a BitSafeCell.
#include <gtest/gtest.h>

#include <set>

#include "fault/adversaries.hpp"
#include "pram/bitsafe.hpp"
#include "pram/engine.hpp"
#include "test_util.hpp"
#include "util/error.hpp"

namespace rfsp {
namespace {

using testing::LambdaAdversary;
using testing::LambdaProgram;

TEST(TornWrites, RequireBitAtomicMode) {
  LambdaProgram program(2, 4, [](Pid, std::uint64_t, CycleContext& ctx) {
    ctx.write(0, 0xff);
    return true;
  });
  LambdaAdversary adversary([](const MachineView&) {
    FaultDecision d;
    d.torn.push_back({1, 0, 4});
    return d;
  });
  Engine engine(program);  // bit_atomic_writes off
  EXPECT_THROW(engine.run(adversary), AdversaryViolation);
}

TEST(TornWrites, PartialCommitBitArithmetic) {
  // One processor writes 0b1111'1111 over 0b0000'0000 and is torn after
  // 4 bits: the cell must read 0b0000'1111. A second write (index 1) is
  // discarded entirely.
  LambdaProgram program(
      2, 8,
      [](Pid pid, std::uint64_t, CycleContext& ctx) {
        if (pid == 1) {
          ctx.write(0, 0xff);
          ctx.write(1, 0x77);
        }
        return true;
      },
      [](const SharedMemory& mem) { return mem.read(0) == 0x0f; });
  LambdaAdversary adversary([](const MachineView& view) {
    FaultDecision d;
    if (view.slot() == 0) d.torn.push_back({1, 0, 4});
    return d;
  });
  EngineOptions options;
  options.bit_atomic_writes = true;
  Engine engine(program, options);
  const RunResult result = engine.run(adversary);
  EXPECT_TRUE(result.goal_met);
  EXPECT_EQ(engine.memory().read(0), 0x0f);  // low 4 bits landed
  EXPECT_EQ(engine.memory().read(1), 0x00);  // later write lost
  EXPECT_EQ(result.tally.failures, 1u);
  EXPECT_EQ(result.tally.completed_work, 1u);  // only processor 0's cycle
}

TEST(TornWrites, EarlierWritesCommitWhole) {
  LambdaProgram program(
      2, 8,
      [](Pid pid, std::uint64_t, CycleContext& ctx) {
        if (pid == 1) {
          ctx.write(0, 0xabc);
          ctx.write(1, 0xff);
        }
        return true;
      },
      [](const SharedMemory& mem) { return mem.read(0) == 0xabc; });
  LambdaAdversary adversary([](const MachineView& view) {
    FaultDecision d;
    if (view.slot() == 0) d.torn.push_back({1, 1, 2});  // tear write #1
    return d;
  });
  EngineOptions options;
  options.bit_atomic_writes = true;
  Engine engine(program, options);
  const RunResult result = engine.run(adversary);
  EXPECT_TRUE(result.goal_met);
  EXPECT_EQ(engine.memory().read(0), 0xabc);  // write #0 intact
  EXPECT_EQ(engine.memory().read(1), 0x03);   // low 2 bits of 0xff
}

TEST(TornWrites, ValidationRejectsBadTears) {
  LambdaProgram program(2, 4, [](Pid, std::uint64_t, CycleContext& ctx) {
    ctx.write(0, 1);
    return true;
  });
  EngineOptions options;
  options.bit_atomic_writes = true;
  {
    LambdaAdversary adversary([](const MachineView&) {
      FaultDecision d;
      d.torn.push_back({1, 5, 4});  // index beyond the single write
      return d;
    });
    Engine engine(program, options);
    EXPECT_THROW(engine.run(adversary), AdversaryViolation);
  }
  {
    LambdaAdversary adversary([](const MachineView&) {
      FaultDecision d;
      d.torn.push_back({1, 0, 64});  // keep_bits out of range
      return d;
    });
    Engine engine(program, options);
    EXPECT_THROW(engine.run(adversary), AdversaryViolation);
  }
}

// ---------------------------------------------------------------------------
// The conversion: a naive shared counter is corruptible; a BitSafeCell
// counter never shows a value that was not written.

TEST(BitSafe, NaiveCellCanBeCorrupted) {
  // The cell holds 0b0111 (written at slot 0); processor 1 overwrites it
  // with 0b1000 and is torn after the lowest bit: the cell becomes 0b0110
  // — a value nobody ever wrote. This is the hazard BitSafeCell removes.
  LambdaProgram program(
      2, 4,
      [](Pid pid, std::uint64_t, CycleContext& ctx) {
        if (pid == 0 && ctx.read(0) == 0) {
          ctx.write(0, 0b0111);  // seed
        } else if (pid == 1 && ctx.read(0) == 0b0111) {
          ctx.write(0, 0b1000);
        }
        return true;
      },
      [](const SharedMemory& mem) { return mem.read(0) == 0b0110; });
  LambdaAdversary adversary([](const MachineView& view) {
    FaultDecision d;
    if (view.slot() == 1) d.torn.push_back({1, 0, 1});
    return d;
  });
  EngineOptions options;
  options.bit_atomic_writes = true;
  Engine engine(program, options);
  const RunResult result = engine.run(adversary);
  EXPECT_TRUE(result.goal_met);  // the corrupt hybrid value appeared
  EXPECT_EQ(engine.memory().read(0), 0b0110);
}

TEST(BitSafe, CellSurvivesArbitraryTearing) {
  // Writers advance a BitSafeCell through 1, 2, 3, ...; the adversary tears
  // every third logical write at a varying bit offset. A reader processor
  // records every value it observes: all observations must be values some
  // writer actually attempted (no Frankenstein words), and the final value
  // must equal the last *completed* write.
  constexpr Addr kCellBase = 1;  // [1,4); cell 0 collects observations
  const BitSafeCell cell(kCellBase);

  LambdaProgram program(
      2, 8,
      [&](Pid pid, std::uint64_t k, CycleContext& ctx) {
        if (pid == 0) {
          // Reader: copy the current logical value into cell 0 (2 reads +
          // 1 write), where the goal predicate can watch it.
          ctx.write(0, cell.read(ctx));
          return true;
        }
        // Writer: set the logical value to its cycle number + 100.
        cell.write(ctx, static_cast<Word>(100 + k));
        return k < 30;
      },
      [](const SharedMemory& mem) { return mem.read(0) >= 120; });

  std::set<Word> observed;
  LambdaAdversary adversary([&](const MachineView& view) {
    observed.insert(view.memory().read(0));
    FaultDecision d;
    // Tear during an initial window only, so the writer can eventually
    // count far enough for the goal (a restart resets its private k).
    if (view.slot() < 12 && view.slot() % 3 == 2 && view.trace(1).started) {
      // Tear the writer: sometimes inside the buffer write (index 0),
      // sometimes inside the toggle write (index 1).
      const unsigned keep = view.slot() % 2 == 0 ? 3u : 0u;
      const std::size_t idx = (view.slot() / 3) % 2;
      d.torn.push_back({1, idx, keep});
      d.restart.push_back(1);
    }
    return d;
  });

  EngineOptions options;
  options.bit_atomic_writes = true;
  Engine engine(program, options);
  const RunResult result = engine.run(adversary);
  EXPECT_TRUE(result.goal_met);

  // Every observed value is either the initial 0 or some attempted value
  // 100..130 — never a torn hybrid.
  for (const Word v : observed) {
    EXPECT_TRUE(v == 0 || (v >= 100 && v <= 131)) << "corrupt value " << v;
  }
  EXPECT_GT(result.tally.failures, 0u);
}

TEST(BitSafe, WriteWithToggleMatchesWrite) {
  // The fused variant must produce the same committed state as read+write.
  constexpr Addr kBase = 0;
  const BitSafeCell cell(kBase);
  LambdaProgram program(
      1, 4,
      [&](Pid, std::uint64_t k, CycleContext& ctx) {
        if (k == 0) {
          cell.write(ctx, 42);
          return true;
        }
        const Word toggle = ctx.read(kBase + 2);
        cell.write_with_toggle(ctx, toggle, 43);
        return false;
      },
      [](const SharedMemory&) { return false; });
  NoFailures none;
  EngineOptions options;
  Engine engine(program, options);
  const RunResult result = engine.run(none);
  EXPECT_TRUE(result.deadlock);  // the lone processor halted; goal never set
  // Logical value is 43: toggle flipped twice, buffers hold 42 and 43.
  const Word toggle = engine.memory().read(kBase + 2) & 1;
  EXPECT_EQ(engine.memory().read(kBase + static_cast<Addr>(toggle)), 43);
  (void)result;
}

}  // namespace
}  // namespace rfsp
