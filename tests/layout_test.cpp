// Layout invariants across size sweeps: every algorithm's shared-memory
// regions must be disjoint, correctly sized, and consistent with the
// structural helpers the state machines rely on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/adversaries.hpp"
#include "fault/pattern.hpp"
#include "pram/engine.hpp"
#include "programs/programs.hpp"
#include "sim/simulator.hpp"
#include "util/bits.hpp"
#include "writeall/algv.hpp"
#include "writeall/algw.hpp"
#include "writeall/algx.hpp"
#include "writeall/combined.hpp"
#include "writeall/runner.hpp"

#include "test_util.hpp"

namespace rfsp {
namespace {

using ::rfsp::testing::ChaosAdversary;

class LayoutSweep : public ::testing::TestWithParam<Addr> {};

TEST_P(LayoutSweep, XRegionsDisjointAndComplete) {
  const Addr n = GetParam();
  const Pid p = static_cast<Pid>(n / 2 + 1);
  const XLayout x(/*x_base=*/10, /*aux_base=*/10 + n, n, p);
  // d heap directly after x, w directly after d, end exact.
  EXPECT_EQ(x.d(1), 10 + n);
  EXPECT_EQ(x.d(2 * x.n_pad - 1), 10 + n + 2 * x.n_pad - 2);
  EXPECT_EQ(x.w(0), 10 + n + 2 * x.n_pad - 1);
  EXPECT_EQ(x.aux_end(), x.w(0) + p);
  // Leaves cover exactly [0, n_pad); real elements below n.
  EXPECT_EQ(x.first_element(x.leaf(0)), 0u);
  EXPECT_EQ(x.first_element(x.leaf(x.n_pad - 1)), x.n_pad - 1);
  // The root covers everything.
  EXPECT_EQ(x.elements_below(1), x.n_pad);
  EXPECT_FALSE(x.structurally_done(1));
}

TEST_P(LayoutSweep, VTreeCoversExactlyTheArray) {
  const Addr n = GetParam();
  const VLayout v(0, n, n, 1, 0);
  EXPECT_GE(v.leaves_real * v.elems_per_leaf, n);
  EXPECT_LT((v.leaves_real - 1) * v.elems_per_leaf, n);
  EXPECT_TRUE(is_pow2(v.leaves));
  EXPECT_GE(v.leaves, v.leaves_real);
  // Sum of real leaves over the two root children equals the total.
  if (v.depth >= 1) {
    EXPECT_EQ(v.real_leaves_below(2) + v.real_leaves_below(3),
              v.leaves_real);
  }
  EXPECT_EQ(v.real_leaves_below(1), v.leaves_real);
  // Phase lengths compose into the iteration.
  EXPECT_EQ(v.iteration, v.phase_alloc + v.phase_work + v.phase_update);
}

TEST_P(LayoutSweep, CombinedSubLayoutsShareXArrayOnly) {
  const Addr n = GetParam();
  const Pid p = static_cast<Pid>(n < 3 ? n : n / 3);
  const CombinedLayout c(0, n, n, std::max<Pid>(p, 1), 0);
  // done flag sits between the x array and V's tree; X's aux starts after
  // V's and nothing overlaps.
  EXPECT_EQ(c.done, n);
  EXPECT_EQ(c.v.c_base, n + 1);
  EXPECT_GE(c.x.d_base, c.v.aux_end());
  EXPECT_EQ(c.v.x_base, c.x.x_base);
  EXPECT_GT(c.aux_end(), c.x.d_base);
}

TEST_P(LayoutSweep, WCountingTreeAfterProgressTree) {
  const Addr n = GetParam();
  const Pid p = static_cast<Pid>(n / 2 + 1);
  const WLayout w(0, n, n, p);
  EXPECT_GE(w.cnt_base, w.progress.aux_end());
  EXPECT_TRUE(is_pow2(w.p_pad));
  EXPECT_GE(w.p_pad, p);
  EXPECT_EQ(w.cnt_leaf(0), static_cast<Addr>(w.p_pad));
  EXPECT_EQ(w.aux_end(), w.cnt(2 * static_cast<Addr>(w.p_pad) - 1) + 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LayoutSweep,
                         ::testing::Values<Addr>(1, 2, 3, 5, 8, 13, 16, 33,
                                                 100, 257, 1024, 4097),
                         [](const ::testing::TestParamInfo<Addr>& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(LayoutSweep, SimLayoutRegionsNestWithoutOverlap) {
  for (const Addr n : {Addr{1}, Addr{7}, Addr{64}, Addr{333}}) {
    std::vector<Word> input(n, 1);
    PrefixSumProgram program(input);
    const SimLayout layout(program, static_cast<Pid>(n));
    EXPECT_EQ(layout.regs, layout.data + layout.data_cells);
    EXPECT_GE(layout.scratch, layout.regs);
    EXPECT_EQ(layout.phase,
              layout.scratch +
                  static_cast<Addr>(layout.n) * layout.scratch_stride);
    EXPECT_GT(layout.total, layout.phase);
    // Scratch stride holds the count plus max_writes (addr, value) pairs.
    EXPECT_EQ(layout.scratch_stride, 1 + 2 * layout.max_writes);
  }
}

TEST(LayoutSweep, XElementRangesPartitionTheTree) {
  // For every interior node, children's element ranges partition the
  // parent's — the invariant the descent logic relies on.
  const XLayout x(0, 64, 64, 8);
  for (Addr node = 1; node < x.n_pad; ++node) {
    EXPECT_EQ(x.first_element(2 * node), x.first_element(node));
    EXPECT_EQ(x.first_element(2 * node + 1),
              x.first_element(node) + x.elements_below(node) / 2);
    EXPECT_EQ(x.elements_below(2 * node) + x.elements_below(2 * node + 1),
              x.elements_below(node));
  }
}

// --- Tree storage orders (TreeOrder / TreeNav) ------------------------------

// Reference vEB order: append the height-`levels` subtree rooted at `root`
// (logical heap ids) — top half first, then each bottom subtree left to
// right. TreeNav must agree with a node's index in this sequence.
void reference_veb(Addr root, unsigned levels, std::vector<Addr>& out) {
  if (levels == 1) {
    out.push_back(root);
    return;
  }
  const unsigned lt = levels / 2;
  const unsigned lb = levels - lt;
  reference_veb(root, lt, out);
  const Addr first = root << lt;
  for (Addr i = 0; i < (Addr{1} << lt); ++i) {
    reference_veb(first + i, lb, out);
  }
}

TEST(TreeNav, HeapOrderIsTheIdentity) {
  for (unsigned levels = 1; levels <= 12; ++levels) {
    const TreeNav nav(levels, TreeOrder::kHeap);
    for (Addr node = 1; node <= nav.nodes(); ++node) {
      ASSERT_EQ(nav.pos(node), node - 1) << "levels=" << levels;
    }
  }
}

TEST(TreeNav, VebOrderMatchesRecursiveReference) {
  for (unsigned levels = 1; levels <= 12; ++levels) {
    std::vector<Addr> order;
    reference_veb(1, levels, order);
    const TreeNav nav(levels, TreeOrder::kVeb);
    ASSERT_EQ(order.size(), nav.nodes()) << "levels=" << levels;
    for (Addr i = 0; i < order.size(); ++i) {
      ASSERT_EQ(nav.pos(order[i]), i)
          << "levels=" << levels << " node=" << order[i];
    }
  }
}

TEST(TreeNav, VebOrderIsAPermutation) {
  for (unsigned levels = 1; levels <= 14; ++levels) {
    const TreeNav nav(levels, TreeOrder::kVeb);
    std::vector<bool> seen(nav.nodes(), false);
    for (Addr node = 1; node <= nav.nodes(); ++node) {
      const Addr pos = nav.pos(node);
      ASSERT_LT(pos, nav.nodes()) << "levels=" << levels;
      ASSERT_FALSE(seen[pos]) << "levels=" << levels << " node=" << node;
      seen[pos] = true;
    }
  }
}

TEST(TreeNav, RootAndLogicalHelpersAreOrderIndependent) {
  EXPECT_EQ(TreeNav::parent(6), 3u);
  EXPECT_EQ(TreeNav::left(3), 6u);
  EXPECT_EQ(TreeNav::right(3), 7u);
  EXPECT_EQ(TreeNav::ancestor(13, 2), 3u);
  // The root maps to cell 0 in both orders — the goal-cell addresses the
  // progress-tree algorithms publish are therefore order-invariant.
  for (const TreeOrder order : {TreeOrder::kHeap, TreeOrder::kVeb}) {
    EXPECT_EQ(TreeNav(9, order).pos(TreeNav::root()), 0u);
  }
}

// --- Cross-layout execution equivalence --------------------------------------
//
// The storage order is model-invisible: runs under heap and veb must agree
// on everything the model observes — outcome, tallies, the per-slot trace,
// the recorded fault pattern, and the per-phase work attribution. (Memory
// images are layout-private and intentionally not compared.)

struct LayoutRun {
  WriteAllOutcome out;
};

std::unique_ptr<Adversary> layout_adversary(const std::string& name,
                                            WriteAllAlgo algo) {
  if (name == "random") {
    RandomAdversaryOptions opt;
    opt.fail_prob = 0.08;
    opt.restart_prob = algo == WriteAllAlgo::kW ? 0.0 : 0.6;
    opt.max_pattern = 400;
    return std::make_unique<RandomAdversary>(29, opt);
  }
  if (name == "burst") {
    BurstAdversaryOptions opt;
    opt.period = 3;
    opt.count = 5;
    opt.restart = algo != WriteAllAlgo::kW;
    opt.max_pattern = 300;
    return std::make_unique<BurstAdversary>(opt);
  }
  if (name == "thrashing") return std::make_unique<ThrashingAdversary>();
  if (name == "chaos") {
    return std::make_unique<ChaosAdversary>(41, /*allow_torn=*/false);
  }
  return std::make_unique<NoFailures>();
}

LayoutRun run_layout(WriteAllAlgo algo, const std::string& adversary_name,
                     TreeOrder order) {
  const WriteAllConfig config{
      .n = 160, .p = 40, .seed = 3, .layout = {.tree_order = order}};
  const auto adversary = layout_adversary(adversary_name, algo);
  EngineOptions options;
  options.max_slots = 4000;  // thrashing restarts can stall fail-stop W
  options.record_pattern = true;
  options.record_trace = true;
  options.attribute_phases = true;
  return LayoutRun{run_writeall(algo, config, *adversary, options)};
}

void expect_model_identical(const LayoutRun& a, const LayoutRun& b,
                            const std::string& what) {
  EXPECT_EQ(a.out.solved, b.out.solved) << what;
  EXPECT_EQ(a.out.run.tally, b.out.run.tally) << what;
  EXPECT_EQ(pattern_to_text(a.out.run.pattern),
            pattern_to_text(b.out.run.pattern))
      << what;
  ASSERT_EQ(a.out.run.trace.size(), b.out.run.trace.size()) << what;
  for (std::size_t i = 0; i < a.out.run.trace.size(); ++i) {
    EXPECT_EQ(a.out.run.trace[i].started, b.out.run.trace[i].started) << what;
    EXPECT_EQ(a.out.run.trace[i].completed, b.out.run.trace[i].completed)
        << what;
    EXPECT_EQ(a.out.run.trace[i].failures, b.out.run.trace[i].failures)
        << what;
    EXPECT_EQ(a.out.run.trace[i].restarts, b.out.run.trace[i].restarts)
        << what;
  }
  ASSERT_EQ(a.out.run.phases.size(), b.out.run.phases.size()) << what;
  for (std::size_t i = 0; i < a.out.run.phases.size(); ++i) {
    const PhaseWork& pa = a.out.run.phases[i];
    const PhaseWork& pb = b.out.run.phases[i];
    EXPECT_EQ(pa.name, pb.name) << what;
    EXPECT_EQ(pa.completed_work, pb.completed_work) << what << " " << pa.name;
    EXPECT_EQ(pa.attempted_work, pb.attempted_work) << what << " " << pa.name;
    EXPECT_EQ(pa.failures, pb.failures) << what << " " << pa.name;
    EXPECT_EQ(pa.restarts, pb.restarts) << what << " " << pa.name;
    EXPECT_EQ(pa.slots, pb.slots) << what << " " << pa.name;
  }
}

TEST(TreeOrderEquivalence, HeapAndVebAgreeOnEverythingTheModelSees) {
  for (const WriteAllAlgo algo : {WriteAllAlgo::kW, WriteAllAlgo::kV,
                                  WriteAllAlgo::kX,
                                  WriteAllAlgo::kCombinedVX}) {
    for (const char* adversary :
         {"none", "random", "burst", "thrashing", "chaos"}) {
      const std::string what =
          std::string(to_string(algo)) + " x " + adversary;
      SCOPED_TRACE(what);
      const LayoutRun heap = run_layout(algo, adversary, TreeOrder::kHeap);
      const LayoutRun veb = run_layout(algo, adversary, TreeOrder::kVeb);
      expect_model_identical(heap, veb, what);
    }
  }
}

// A checkpoint's memory image is layout-private, so the round trip —
// capture under veb, resume under veb — must land on the straight veb
// run's exact outcome.
TEST(TreeOrderEquivalence, VebCheckpointRoundTrip) {
  for (const WriteAllAlgo algo : {WriteAllAlgo::kX,
                                  WriteAllAlgo::kCombinedVX}) {
    SCOPED_TRACE(to_string(algo));
    const WriteAllConfig config{
        .n = 96, .p = 24, .seed = 7,
        .layout = {.tree_order = TreeOrder::kVeb}};
    EngineOptions options;
    options.max_slots = 4000;

    ChaosAdversary straight_adv(9, /*allow_torn=*/false);
    const WriteAllOutcome straight =
        run_writeall(algo, config, straight_adv, options);

    std::vector<EngineCheckpoint> checkpoints;
    EngineOptions recording = options;
    recording.checkpoint_every = 5;
    recording.on_checkpoint = [&](const EngineCheckpoint& cp) {
      checkpoints.push_back(cp);
    };
    ChaosAdversary recording_adv(9, /*allow_torn=*/false);
    const WriteAllOutcome observed =
        run_writeall(algo, config, recording_adv, recording);
    EXPECT_EQ(straight.run.tally, observed.run.tally);
    ASSERT_FALSE(checkpoints.empty());

    const EngineCheckpoint& mid = checkpoints[checkpoints.size() / 2];
    ChaosAdversary resumed_adv(9, /*allow_torn=*/false);
    const WriteAllOutcome resumed =
        run_writeall(algo, config, resumed_adv, options, &mid);
    EXPECT_EQ(straight.run.tally, resumed.run.tally)
        << "veb resume from slot " << mid.slot << " diverged";
    EXPECT_EQ(straight.solved, resumed.solved);
  }
}

}  // namespace
}  // namespace rfsp
