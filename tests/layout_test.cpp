// Layout invariants across size sweeps: every algorithm's shared-memory
// regions must be disjoint, correctly sized, and consistent with the
// structural helpers the state machines rely on.
#include <gtest/gtest.h>

#include "programs/programs.hpp"
#include "sim/simulator.hpp"
#include "util/bits.hpp"
#include "writeall/algv.hpp"
#include "writeall/algw.hpp"
#include "writeall/algx.hpp"
#include "writeall/combined.hpp"

namespace rfsp {
namespace {

class LayoutSweep : public ::testing::TestWithParam<Addr> {};

TEST_P(LayoutSweep, XRegionsDisjointAndComplete) {
  const Addr n = GetParam();
  const Pid p = static_cast<Pid>(n / 2 + 1);
  const XLayout x(/*x_base=*/10, /*aux_base=*/10 + n, n, p);
  // d heap directly after x, w directly after d, end exact.
  EXPECT_EQ(x.d(1), 10 + n);
  EXPECT_EQ(x.d(2 * x.n_pad - 1), 10 + n + 2 * x.n_pad - 2);
  EXPECT_EQ(x.w(0), 10 + n + 2 * x.n_pad - 1);
  EXPECT_EQ(x.aux_end(), x.w(0) + p);
  // Leaves cover exactly [0, n_pad); real elements below n.
  EXPECT_EQ(x.first_element(x.leaf(0)), 0u);
  EXPECT_EQ(x.first_element(x.leaf(x.n_pad - 1)), x.n_pad - 1);
  // The root covers everything.
  EXPECT_EQ(x.elements_below(1), x.n_pad);
  EXPECT_FALSE(x.structurally_done(1));
}

TEST_P(LayoutSweep, VTreeCoversExactlyTheArray) {
  const Addr n = GetParam();
  const VLayout v(0, n, n, 1, 0);
  EXPECT_GE(v.leaves_real * v.elems_per_leaf, n);
  EXPECT_LT((v.leaves_real - 1) * v.elems_per_leaf, n);
  EXPECT_TRUE(is_pow2(v.leaves));
  EXPECT_GE(v.leaves, v.leaves_real);
  // Sum of real leaves over the two root children equals the total.
  if (v.depth >= 1) {
    EXPECT_EQ(v.real_leaves_below(2) + v.real_leaves_below(3),
              v.leaves_real);
  }
  EXPECT_EQ(v.real_leaves_below(1), v.leaves_real);
  // Phase lengths compose into the iteration.
  EXPECT_EQ(v.iteration, v.phase_alloc + v.phase_work + v.phase_update);
}

TEST_P(LayoutSweep, CombinedSubLayoutsShareXArrayOnly) {
  const Addr n = GetParam();
  const Pid p = static_cast<Pid>(n < 3 ? n : n / 3);
  const CombinedLayout c(0, n, n, std::max<Pid>(p, 1), 0);
  // done flag sits between the x array and V's tree; X's aux starts after
  // V's and nothing overlaps.
  EXPECT_EQ(c.done, n);
  EXPECT_EQ(c.v.c_base, n + 1);
  EXPECT_GE(c.x.d_base, c.v.aux_end());
  EXPECT_EQ(c.v.x_base, c.x.x_base);
  EXPECT_GT(c.aux_end(), c.x.d_base);
}

TEST_P(LayoutSweep, WCountingTreeAfterProgressTree) {
  const Addr n = GetParam();
  const Pid p = static_cast<Pid>(n / 2 + 1);
  const WLayout w(0, n, n, p);
  EXPECT_GE(w.cnt_base, w.progress.aux_end());
  EXPECT_TRUE(is_pow2(w.p_pad));
  EXPECT_GE(w.p_pad, p);
  EXPECT_EQ(w.cnt_leaf(0), static_cast<Addr>(w.p_pad));
  EXPECT_EQ(w.aux_end(), w.cnt(2 * static_cast<Addr>(w.p_pad) - 1) + 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LayoutSweep,
                         ::testing::Values<Addr>(1, 2, 3, 5, 8, 13, 16, 33,
                                                 100, 257, 1024, 4097),
                         [](const ::testing::TestParamInfo<Addr>& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(LayoutSweep, SimLayoutRegionsNestWithoutOverlap) {
  for (const Addr n : {Addr{1}, Addr{7}, Addr{64}, Addr{333}}) {
    std::vector<Word> input(n, 1);
    PrefixSumProgram program(input);
    const SimLayout layout(program, static_cast<Pid>(n));
    EXPECT_EQ(layout.regs, layout.data + layout.data_cells);
    EXPECT_GE(layout.scratch, layout.regs);
    EXPECT_EQ(layout.phase,
              layout.scratch +
                  static_cast<Addr>(layout.n) * layout.scratch_stride);
    EXPECT_GT(layout.total, layout.phase);
    // Scratch stride holds the count plus max_writes (addr, value) pairs.
    EXPECT_EQ(layout.scratch_stride, 1 + 2 * layout.max_writes);
  }
}

TEST(LayoutSweep, XElementRangesPartitionTheTree) {
  // For every interior node, children's element ranges partition the
  // parent's — the invariant the descent logic relies on.
  const XLayout x(0, 64, 64, 8);
  for (Addr node = 1; node < x.n_pad; ++node) {
    EXPECT_EQ(x.first_element(2 * node), x.first_element(node));
    EXPECT_EQ(x.first_element(2 * node + 1),
              x.first_element(node) + x.elements_below(node) / 2);
    EXPECT_EQ(x.elements_below(2 * node) + x.elements_below(2 * node + 1),
              x.elements_below(node));
  }
}

}  // namespace
}  // namespace rfsp
