// Fast-path regression tests: the engine's zero-allocation slot loop,
// incremental goal tracking, and deterministic parallel cycle execution
// must be observationally identical to the straightforward implementations
// they replaced.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "fault/adversaries.hpp"
#include "pram/engine.hpp"
#include "util/error.hpp"
#include "writeall/runner.hpp"

#include "test_util.hpp"

namespace rfsp {
namespace {

using testing::LambdaAdversary;
using testing::LambdaProgram;

struct FullOutcome {
  RunResult run;
  std::vector<Word> memory;
  std::optional<std::uint64_t> goal_unsat;
};

FullOutcome run_full(WriteAllAlgo algo, const WriteAllConfig& config,
                     Adversary& adversary, EngineOptions options) {
  options.record_trace = true;
  options.record_pattern = true;
  const auto program = make_writeall(algo, config);
  Engine engine(*program, options);
  FullOutcome out;
  out.run = engine.run(adversary);
  const auto words = engine.memory().words();
  out.memory.assign(words.begin(), words.end());
  out.goal_unsat = engine.goal_unsatisfied();
  return out;
}

void expect_identical(const FullOutcome& a, const FullOutcome& b,
                      const char* what) {
  EXPECT_EQ(a.run.goal_met, b.run.goal_met) << what;
  EXPECT_EQ(a.run.deadlock, b.run.deadlock) << what;
  EXPECT_EQ(a.run.slot_limit, b.run.slot_limit) << what;

  const WorkTally& ta = a.run.tally;
  const WorkTally& tb = b.run.tally;
  EXPECT_EQ(ta.completed_work, tb.completed_work) << what;
  EXPECT_EQ(ta.attempted_work, tb.attempted_work) << what;
  EXPECT_EQ(ta.failures, tb.failures) << what;
  EXPECT_EQ(ta.restarts, tb.restarts) << what;
  EXPECT_EQ(ta.slots, tb.slots) << what;
  EXPECT_EQ(ta.halted, tb.halted) << what;
  EXPECT_EQ(ta.peak_live, tb.peak_live) << what;

  EXPECT_EQ(a.memory, b.memory) << what;

  ASSERT_EQ(a.run.trace.size(), b.run.trace.size()) << what;
  for (std::size_t i = 0; i < a.run.trace.size(); ++i) {
    EXPECT_EQ(a.run.trace[i].started, b.run.trace[i].started) << what;
    EXPECT_EQ(a.run.trace[i].completed, b.run.trace[i].completed) << what;
    EXPECT_EQ(a.run.trace[i].failures, b.run.trace[i].failures) << what;
    EXPECT_EQ(a.run.trace[i].restarts, b.run.trace[i].restarts) << what;
  }
  EXPECT_EQ(a.run.pattern.events().size(), b.run.pattern.events().size())
      << what;
}

// --- Deterministic parallel cycle execution --------------------------------

// cycle_threads > 1 must produce bit-identical results to a sequential run:
// same tallies, same per-slot trace, same final memory — under failures and
// restarts, not just fault-free.
TEST(ParallelCycles, BitIdenticalToSequentialUnderRandomFaults) {
  for (const WriteAllAlgo algo :
       {WriteAllAlgo::kW, WriteAllAlgo::kV, WriteAllAlgo::kX}) {
    for (const std::uint64_t seed : {11u, 23u}) {
      const WriteAllConfig config{.n = 192, .p = 48};
      RandomAdversaryOptions rand_opt;
      rand_opt.fail_prob = 0.08;
      rand_opt.restart_prob = 0.6;
      // Algorithm W is fail-stop: it need not terminate under restarts.
      if (algo == WriteAllAlgo::kW) rand_opt.restart_prob = 0;
      rand_opt.max_pattern = 400;

      RandomAdversary sequential_adv(seed, rand_opt);
      EngineOptions sequential_opt;
      const FullOutcome sequential =
          run_full(algo, config, sequential_adv, sequential_opt);

      RandomAdversary parallel_adv(seed, rand_opt);
      EngineOptions parallel_opt;
      parallel_opt.cycle_threads = 4;
      const FullOutcome parallel =
          run_full(algo, config, parallel_adv, parallel_opt);

      EXPECT_TRUE(sequential.run.goal_met);
      expect_identical(sequential, parallel,
                       std::string(to_string(algo)).c_str());
    }
  }
}

TEST(ParallelCycles, BitIdenticalFaultFree) {
  for (const WriteAllAlgo algo :
       {WriteAllAlgo::kW, WriteAllAlgo::kV, WriteAllAlgo::kX}) {
    const WriteAllConfig config{.n = 256, .p = 256};
    NoFailures none_a;
    EngineOptions sequential_opt;
    const FullOutcome sequential = run_full(algo, config, none_a,
                                            sequential_opt);
    NoFailures none_b;
    EngineOptions parallel_opt;
    parallel_opt.cycle_threads = 4;
    const FullOutcome parallel = run_full(algo, config, none_b, parallel_opt);
    EXPECT_TRUE(sequential.run.goal_met);
    expect_identical(sequential, parallel,
                     std::string(to_string(algo)).c_str());
  }
}

// A ModelViolation thrown by some processor's cycle must surface no matter
// which worker ran it.
TEST(ParallelCycles, ModelViolationPropagates) {
  LambdaProgram program(8, 16, [](Pid, std::uint64_t, CycleContext& ctx) {
    for (Addr a = 0; a < 16; ++a) (void)ctx.read(a);  // blows the budget
    return true;
  });
  NoFailures none;
  EngineOptions options;
  options.cycle_threads = 4;
  Engine engine(program, options);
  EXPECT_THROW(engine.run(none), ModelViolation);
}

// --- Incremental goal tracking ---------------------------------------------

// The counter-based goal must agree with per-slot full goal() scans for the
// whole observable result, and the final counter must match a recount.
TEST(IncrementalGoal, MatchesFullScanUnderRandomFaults) {
  for (const WriteAllAlgo algo :
       {WriteAllAlgo::kTrivial, WriteAllAlgo::kV, WriteAllAlgo::kX}) {
    const WriteAllConfig config{.n = 160, .p = 32};
    RandomAdversaryOptions rand_opt;
    rand_opt.fail_prob = algo == WriteAllAlgo::kTrivial ? 0.0 : 0.05;
    rand_opt.max_pattern = 200;

    RandomAdversary incremental_adv(7, rand_opt);
    EngineOptions incremental_opt;  // incremental_goal defaults to true
    const FullOutcome incremental =
        run_full(algo, config, incremental_adv, incremental_opt);

    RandomAdversary fullscan_adv(7, rand_opt);
    EngineOptions fullscan_opt;
    fullscan_opt.incremental_goal = false;
    const FullOutcome fullscan =
        run_full(algo, config, fullscan_adv, fullscan_opt);

    expect_identical(incremental, fullscan,
                     std::string(to_string(algo)).c_str());
    // The opt-in is active (these programs expose goal_cells) and the run
    // finished: no goal cell may be left unsatisfied.
    ASSERT_TRUE(incremental.goal_unsat.has_value());
    EXPECT_EQ(*incremental.goal_unsat, 0u);
    // The ablation run keeps scanning and reports no counter.
    EXPECT_FALSE(fullscan.goal_unsat.has_value());
  }
}

TEST(IncrementalGoal, AbsentWithoutProgramOptIn) {
  // LambdaProgram does not override goal_cells, so the engine falls back to
  // full goal() scans even with the option enabled.
  LambdaProgram program(
      2, 8,
      [](Pid pid, std::uint64_t, CycleContext& ctx) {
        ctx.write(static_cast<Addr>(pid), 1);
        return false;
      },
      [](const SharedMemory& mem) {
        return mem.read(0) != 0 && mem.read(1) != 0;
      });
  NoFailures none;
  Engine engine(program);
  const RunResult result = engine.run(none);
  EXPECT_TRUE(result.goal_met);
  EXPECT_FALSE(engine.goal_unsatisfied().has_value());
}

// Torn writes land through the same commit path; the counter must stay in
// lock step with the memory contents, slot by slot and at the end.
TEST(IncrementalGoal, CounterAgreesWithRecountAfterTornWrites) {
  const WriteAllConfig config{.n = 24, .p = 4};
  const auto program = make_writeall(WriteAllAlgo::kTrivial, config);
  const std::optional<GoalCells> cells_opt = program->goal_cells();
  ASSERT_TRUE(cells_opt.has_value());
  const GoalCells cells = *cells_opt;

  EngineOptions options;
  options.bit_atomic_writes = true;
  Engine engine(*program, options);

  const auto recount = [&](const SharedMemory& mem) {
    std::uint64_t unsat = 0;
    for (Addr a = cells.base; a < cells.base + cells.count; ++a) {
      if (!program->goal_cell_done(a, mem.read(a))) ++unsat;
    }
    return unsat;
  };

  // Tear one write of every live non-zero processor early on (keep_bits = 0
  // leaves the cell's previous contents, so the visit marker is lost even
  // though the commit path ran), restart the casualties, and verify the
  // engine's counter against a brute-force recount on every decision.
  LambdaAdversary adversary([&](const MachineView& view) {
    const auto counted = engine.goal_unsatisfied();
    EXPECT_TRUE(counted.has_value());
    // value_or: an empty counter mismatches the recount instead of UB.
    EXPECT_EQ(counted.value_or(~std::uint64_t{0}), recount(view.memory()));

    FaultDecision d;
    if (view.slot() == 1) {
      for (Pid pid = 1; pid < view.processors(); ++pid) {
        if (view.trace(pid).started && !view.trace(pid).writes.empty()) {
          d.torn.push_back({.pid = pid, .write_index = 0, .keep_bits = 0});
          d.restart.push_back(pid);
        }
      }
      if (d.torn.size() >= view.started_pids().size()) {
        d.torn.pop_back();  // keep a survivor
        d.restart.pop_back();
      }
    }
    return d;
  });

  const RunResult result = engine.run(adversary);
  EXPECT_TRUE(result.goal_met);
  const std::optional<std::uint64_t> final_unsat = engine.goal_unsatisfied();
  ASSERT_TRUE(final_unsat.has_value());
  EXPECT_EQ(*final_unsat, 0u);
  EXPECT_EQ(recount(engine.memory()), 0u);
  EXPECT_GT(result.tally.failures, 0u);
}

// --- Read-log gating -------------------------------------------------------

TEST(ReadLog, OffByDefaultOnByRequest) {
  std::size_t default_reads = ~std::size_t{0};
  std::size_t logged_reads = ~std::size_t{0};
  for (const bool log : {false, true}) {
    LambdaProgram program(1, 8, [](Pid, std::uint64_t, CycleContext& ctx) {
      (void)ctx.read(2);
      (void)ctx.read(5);
      return false;
    });
    std::size_t seen = 0;
    LambdaAdversary adversary([&](const MachineView& view) {
      seen = view.trace(0).reads.size();
      return FaultDecision{};
    });
    EngineOptions options;
    options.log_reads = log;
    Engine engine(program, options);
    (void)engine.run(adversary);
    (log ? logged_reads : default_reads) = seen;
  }
  EXPECT_EQ(default_reads, 0u);  // budget still enforced, addresses not kept
  EXPECT_EQ(logged_reads, 2u);
}

}  // namespace
}  // namespace rfsp
