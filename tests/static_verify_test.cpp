// Static verifier coverage (analysis/static/verify.hpp): the library
// algorithms must prove clean over both tree orders, and a mutation suite —
// one deliberately broken program per conformance property — must come back
// with exactly the right finding class and a concrete counterexample
// (state words, slot, read valuation). The mutants implement save_state /
// load_state themselves: the verifier keys its state space by the
// checkpoint word stream and refuses programs without it (also tested).
#include <functional>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/static/verify.hpp"
#include "pram/soa.hpp"
#include "util/error.hpp"
#include "writeall/runner.hpp"

namespace {

using namespace rfsp;
using analysis::StaticCheck;
using analysis::StaticReport;
using analysis::VerifyOptions;
using analysis::verify_program;

// One-word-of-state mutant scaffold: the cycle body is a lambda over
// (ctx, pid, step). Checkpoint hooks are real so the verifier can intern
// and replay states.
using MutantCycle = std::function<bool(CycleContext&, Pid, Word&)>;

class MutantState final : public ProcessorState {
 public:
  MutantState(MutantCycle fn, Pid pid, Word step)
      : fn_(std::move(fn)), pid_(pid), step_(step) {}

  bool cycle(CycleContext& ctx) override { return fn_(ctx, pid_, step_); }

  bool save_state(std::vector<Word>& out) const override {
    out.push_back(step_);
    return true;
  }

 private:
  MutantCycle fn_;
  Pid pid_;
  Word step_;
};

class MutantProgram : public Program {
 public:
  MutantProgram(Pid p, Addr memory, MutantCycle fn, bool oblivious = false)
      : p_(p), memory_(memory), fn_(std::move(fn)), oblivious_(oblivious) {}

  std::string_view name() const override { return "mutant"; }
  Pid processors() const override { return p_; }
  Addr memory_size() const override { return memory_; }
  bool goal(const SharedMemory& mem) const override {
    return mem.read(0) != 0;
  }
  bool oblivious() const override { return oblivious_; }

  std::unique_ptr<ProcessorState> boot(Pid pid) const override {
    return std::make_unique<MutantState>(fn_, pid, 0);
  }
  std::unique_ptr<ProcessorState> load_state(
      Pid pid, std::span<const Word> data) const override {
    if (data.size() != 1) throw ConfigError("mutant stream must be 1 word");
    return std::make_unique<MutantState>(fn_, pid, data[0]);
  }

 private:
  Pid p_;
  Addr memory_;
  MutantCycle fn_;
  bool oblivious_;
};

// Fast options for the single-purpose mutants: a short horizon is plenty
// (their behaviour is slot-independent), and it keeps the suite quick.
VerifyOptions quick() {
  VerifyOptions options;
  options.slots = 4;
  return options;
}

// ---------------------------------------------------------------------------
// The library algorithms prove clean.

TEST(StaticVerify, WriteAllMatrixClean) {
  const std::vector<WriteAllAlgo> matrix = {
      WriteAllAlgo::kW, WriteAllAlgo::kV, WriteAllAlgo::kX,
      WriteAllAlgo::kCombinedVX};
  for (const WriteAllAlgo algo : matrix) {
    for (const TreeOrder order : {TreeOrder::kHeap, TreeOrder::kVeb}) {
      const WriteAllConfig config{
          .n = 8, .p = 4, .seed = 1, .layout = {.tree_order = order}};
      const auto program = make_writeall(algo, config);
      const StaticReport report = verify_program(*program);
      EXPECT_TRUE(report.ok())
          << to_string(algo) << "/" << to_string(order) << ":\n"
          << report.to_text();
      EXPECT_TRUE(report.converged)
          << to_string(algo) << "/" << to_string(order);
      EXPECT_GT(report.halting_configs, 0u)
          << to_string(algo) << "/" << to_string(order);
      EXPECT_LE(report.max_reads_in_cycle, 4u);
      EXPECT_LE(report.max_writes_in_cycle, 2u);
    }
  }
}

TEST(StaticVerify, ObliviousAlgorithmsProveTheirClaim) {
  // Trivial claims Program::oblivious; the proof must actually run and
  // still come back clean.
  const WriteAllConfig config{.n = 8, .p = 4};
  const auto trivial = make_writeall(WriteAllAlgo::kTrivial, config);
  ASSERT_TRUE(trivial->oblivious());
  const StaticReport report = verify_program(*trivial);
  EXPECT_TRUE(report.ok()) << report.to_text();
  EXPECT_TRUE(report.oblivious_checked);

  const WriteAllConfig seq{.n = 8, .p = 1};
  const auto sequential = make_writeall(WriteAllAlgo::kSequential, seq);
  ASSERT_TRUE(sequential->oblivious());
  const StaticReport seq_report = verify_program(*sequential);
  EXPECT_TRUE(seq_report.ok()) << seq_report.to_text();
  EXPECT_TRUE(seq_report.oblivious_checked);
}

TEST(StaticVerify, SnapshotAlgorithmHaltsViaImageWidening) {
  // The snapshot program reads no individual cells — progress reaches it
  // only through the monotone snapshot-image widening. Without that, the
  // halt-reachability check would misfire here.
  const WriteAllConfig config{.n = 8, .p = 4};
  const auto program = make_writeall(WriteAllAlgo::kSnapshot, config);
  VerifyOptions options;
  options.unit_cost_snapshot = true;
  const StaticReport report = verify_program(*program, options);
  EXPECT_TRUE(report.ok()) << report.to_text();
  EXPECT_GT(report.halting_configs, 0u);
}

// ---------------------------------------------------------------------------
// Mutation suite: each broken program must yield exactly its finding class.

TEST(StaticVerify, OverBudgetReadIsFound) {
  MutantProgram mutant(1, 8, [](CycleContext& ctx, Pid, Word&) {
    for (Addr a = 0; a < 5; ++a) ctx.read(a);  // budget is 4
    return false;
  });
  const StaticReport report = verify_program(mutant, quick());
  EXPECT_GT(report.count(StaticCheck::kReadBudget), 0u);
  EXPECT_EQ(report.count(StaticCheck::kWriteBudget), 0u);
  ASSERT_FALSE(report.findings.empty());
  const analysis::StaticFinding& f = report.findings.front();
  EXPECT_EQ(f.check, StaticCheck::kReadBudget);
  EXPECT_EQ(f.state.size(), 1u);           // counterexample state words
  EXPECT_GE(f.context.slot, 0);            // ... its slot
  EXPECT_EQ(f.valuation.size(), 5u);       // ... and the read valuation
}

TEST(StaticVerify, OverBudgetWriteIsFound) {
  MutantProgram mutant(1, 8, [](CycleContext& ctx, Pid, Word&) {
    ctx.write(0, 1);
    ctx.write(1, 1);
    ctx.write(2, 1);  // budget is 2
    return false;
  });
  const StaticReport report = verify_program(mutant, quick());
  EXPECT_GT(report.count(StaticCheck::kWriteBudget), 0u);
  EXPECT_EQ(report.count(StaticCheck::kReadBudget), 0u);
}

TEST(StaticVerify, ReadAfterWriteBreaksPhaseOrder) {
  MutantProgram mutant(1, 8, [](CycleContext& ctx, Pid, Word&) {
    ctx.write(0, 1);
    ctx.read(1);  // read*, compute, write* — reads must come first
    return false;
  });
  const StaticReport report = verify_program(mutant, quick());
  EXPECT_GT(report.count(StaticCheck::kPhaseOrder), 0u);
}

TEST(StaticVerify, SnapshotAfterWriteBreaksPhaseOrder) {
  // The engine's runtime checks never catch this one (snapshot() only
  // rejects prior *reads*): the verifier must.
  MutantProgram mutant(1, 8, [](CycleContext& ctx, Pid, Word&) {
    ctx.write(0, 1);
    ctx.snapshot();
    return false;
  });
  VerifyOptions options = quick();
  options.unit_cost_snapshot = true;
  const StaticReport report = verify_program(mutant, options);
  EXPECT_GT(report.count(StaticCheck::kPhaseOrder), 0u);
}

TEST(StaticVerify, ValueDependentAddressBreaksObliviousClaim) {
  // Claims the oblivious fast path but routes a write address through a
  // value read from shared memory — the address trace differs across
  // valuations, which is exactly what the differential proof compares.
  MutantProgram mutant(
      1, 8,
      [](CycleContext& ctx, Pid, Word&) {
        const Word v = ctx.read(0);
        ctx.write((v % 2) != 0 ? Addr{1} : Addr{2}, 1);
        return false;
      },
      /*oblivious=*/true);
  const StaticReport report = verify_program(mutant, quick());
  EXPECT_GT(report.count(StaticCheck::kOblivious), 0u);
  bool found = false;
  for (const analysis::StaticFinding& f : report.findings) {
    if (f.check != StaticCheck::kOblivious) continue;
    found = true;
    EXPECT_FALSE(f.valuation.empty());  // the diverging valuation
  }
  EXPECT_TRUE(found);
  // The same program without the claim is legitimately adaptive: clean.
  MutantProgram honest(1, 8, [](CycleContext& ctx, Pid, Word&) {
    const Word v = ctx.read(0);
    ctx.write((v % 2) != 0 ? Addr{1} : Addr{2}, 1);
    return false;
  });
  EXPECT_TRUE(verify_program(honest, quick()).ok());
}

TEST(StaticVerify, CommonWriteDisagreementIsFound) {
  // Two processors write different values to one cell with no reads at
  // all: their (empty) valuations are trivially consistent, so COMMON
  // agreement is provably violated.
  MutantProgram mutant(2, 8, [](CycleContext& ctx, Pid pid, Word&) {
    ctx.write(0, Word{pid} + 1);
    return false;
  });
  const StaticReport report = verify_program(mutant, quick());
  EXPECT_GT(report.count(StaticCheck::kWriteAgreement), 0u);
  bool found = false;
  for (const analysis::StaticFinding& f : report.findings) {
    if (f.check != StaticCheck::kWriteAgreement) continue;
    found = true;
    EXPECT_EQ(f.context.cell, 0);
    EXPECT_EQ(f.context.pids.size(), 2u);
    EXPECT_EQ(f.context.values.size(), 2u);
  }
  EXPECT_TRUE(found);
}

TEST(StaticVerify, OutOfBoundsReachableWithoutArbitraryIsFound) {
  MutantProgram mutant(1, 8, [](CycleContext& ctx, Pid, Word&) {
    ctx.read(8);  // memory_size() is 8: one past the end
    return false;
  });
  const StaticReport report = verify_program(mutant, quick());
  EXPECT_GT(report.count(StaticCheck::kOutOfBounds), 0u);
}

TEST(StaticVerify, HaltUnreachableSpinnerIsFound) {
  // Writes forever, never reads, never halts: exploration converges (one
  // state, no branching) and the halt-reachability check must fire.
  MutantProgram mutant(1, 8, [](CycleContext& ctx, Pid, Word&) {
    ctx.write(0, 1);
    return true;
  });
  const StaticReport report = verify_program(mutant, quick());
  EXPECT_GT(report.count(StaticCheck::kHaltUnreachable), 0u);
  EXPECT_TRUE(report.converged);
}

// ---------------------------------------------------------------------------
// Interpreter/kernel bit-equivalence.

namespace kernelmut {

// Interpreter: write(0, 42) then halt. The kernel writes 43 instead.
class LyingKernel final : public BatchKernel {
 public:
  std::size_t registers() const override { return 1; }
  std::uint32_t control_states() const override { return 1; }
  void boot_lane(SoaStore& soa, Pid pid) const override {
    soa.reg(0, pid) = 0;
    soa.set_ctrl(pid, 0);
  }
  void run(std::uint32_t, std::span<const Pid> pids, const BatchContext& ctx,
           SoaStore&) const override {
    for (const Pid pid : pids) {
      LaneEmit emit(ctx, pid);
      emit.write(0, 43);  // the interpreter writes 42
      emit.halt();
    }
  }
  void save_lane(const SoaStore& soa, Pid pid,
                 std::vector<Word>& out) const override {
    out.push_back(soa.reg(0, pid));
  }
  void load_lane(SoaStore& soa, Pid pid,
                 std::span<const Word> data) const override {
    if (data.size() != 1) throw ConfigError("bad lane stream");
    soa.reg(0, pid) = data[0];
    soa.set_ctrl(pid, 0);
  }
};

class LyingProgram final : public MutantProgram {
 public:
  LyingProgram()
      : MutantProgram(1, 8, [](CycleContext& ctx, Pid, Word&) {
          ctx.write(0, 42);
          return false;
        }) {}
  std::unique_ptr<BatchKernel> batch_kernels() const override {
    return std::make_unique<LyingKernel>();
  }
};

}  // namespace kernelmut

TEST(StaticVerify, KernelValueMismatchIsFound) {
  const kernelmut::LyingProgram mutant;
  const StaticReport report = verify_program(mutant, quick());
  EXPECT_TRUE(report.kernel_checked);
  EXPECT_GT(report.count(StaticCheck::kKernelMismatch), 0u);
  EXPECT_GT(report.kernel_paths, 0u);
}

// ---------------------------------------------------------------------------
// Interface contract and report plumbing.

TEST(StaticVerify, ProgramWithoutCheckpointHooksIsRefused) {
  class NoHooks final : public Program {
   public:
    std::string_view name() const override { return "no-hooks"; }
    Pid processors() const override { return 1; }
    Addr memory_size() const override { return 4; }
    bool goal(const SharedMemory&) const override { return false; }
    std::unique_ptr<ProcessorState> boot(Pid) const override {
      class S final : public ProcessorState {
        bool cycle(CycleContext&) override { return false; }
      };
      return std::make_unique<S>();
    }
  };
  const NoHooks program;
  EXPECT_THROW(verify_program(program), ConfigError);
}

TEST(StaticVerify, FindingsDeduplicatePerState) {
  // The spinner offends in every slot of the horizon, but the counter
  // counts offending *states* — one here — not offending paths.
  MutantProgram mutant(1, 8, [](CycleContext& ctx, Pid, Word&) {
    for (Addr a = 0; a < 5; ++a) ctx.read(a);
    return false;
  });
  VerifyOptions options = quick();
  options.slots = 8;
  const StaticReport report = verify_program(mutant, options);
  EXPECT_EQ(report.count(StaticCheck::kReadBudget), 1u);
}

TEST(StaticVerify, JsonlReportRoundTrips) {
  MutantProgram mutant(1, 8, [](CycleContext& ctx, Pid, Word&) {
    for (Addr a = 0; a < 5; ++a) ctx.read(a);
    return false;
  });
  const StaticReport report = verify_program(mutant, quick());
  std::ostringstream out;
  report.write_jsonl(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"e\":\"static-finding\""), std::string::npos);
  EXPECT_NE(text.find("\"check\":\"read-budget\""), std::string::npos);
  EXPECT_NE(text.find("\"valuation\":"), std::string::npos);
  EXPECT_NE(text.find("\"e\":\"static-summary\""), std::string::npos);
}

}  // namespace
