// Tests for the binary trace transport (obs/binary_trace) and the online
// StreamAggregator (obs/stream): lossless binary <-> JSONL round trips and
// exact tally reconstruction across the algorithm × adversary × engine-mode
// matrix, incremental decoding, and the malformed-input error paths.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fault/adversaries.hpp"
#include "obs/binary_trace.hpp"
#include "obs/stream.hpp"
#include "obs/trace.hpp"
#include "test_util.hpp"
#include "util/error.hpp"
#include "writeall/runner.hpp"

namespace rfsp {
namespace {

// ---------------------------------------------------------------------------
// Round-trip matrix: algorithms × adversaries × engine modes

struct MatrixCell {
  WriteAllAlgo algo;
  const char* algo_name;
  const char* adversary;
  // Engine mode: 0 sequential, 1 cycle_threads=4, 2 batch.
  int mode;
};

std::unique_ptr<Adversary> make_adversary(std::string_view name) {
  if (name == "none") return std::make_unique<NoFailures>();
  if (name == "random") {
    return std::make_unique<RandomAdversary>(
        99, RandomAdversaryOptions{.fail_prob = 0.15, .restart_prob = 0.4});
  }
  if (name == "burst") {
    return std::make_unique<BurstAdversary>(
        BurstAdversaryOptions{.period = 4, .count = 8});
  }
  if (name == "thrashing") {
    return std::make_unique<ThrashingAdversary>(/*max_pattern=*/512);
  }
  if (name == "chaos") {
    return std::make_unique<testing::ChaosAdversary>(7, /*allow_torn=*/false);
  }
  ADD_FAILURE() << "unknown adversary " << name;
  return std::make_unique<NoFailures>();
}

EngineOptions mode_options(int mode) {
  EngineOptions options;
  // W need not terminate under restarts: bound every cell so the trace is
  // finite either way (a slot_limit run round-trips just the same).
  options.max_slots = 400;
  if (mode == 1) options.cycle_threads = 4;
  if (mode == 2) options.batch = true;
  return options;
}

// One engine run of the cell with `sink` installed; the run is fully
// deterministic given the cell, so repeated calls replay the same events.
WriteAllOutcome run_cell(const MatrixCell& cell, TraceSink& sink) {
  const auto adversary = make_adversary(cell.adversary);
  EngineOptions options = mode_options(cell.mode);
  options.sink = &sink;
  return run_writeall(cell.algo, {.n = 256, .p = 32, .seed = 5}, *adversary,
                      options);
}

std::string reencode(const std::string& encoded, std::string_view to) {
  std::istringstream in(encoded);
  std::ostringstream out;
  const std::unique_ptr<TraceReader> reader = open_trace_reader(in);
  const std::unique_ptr<TraceSink> sink = make_trace_sink(out, to);
  replay_trace(*reader, *sink);
  return out.str();
}

TEST(BinaryTraceRoundTrip, MatrixBitIdentical) {
  const struct { WriteAllAlgo algo; const char* name; } kAlgos[] = {
      {WriteAllAlgo::kW, "W"},
      {WriteAllAlgo::kV, "V"},
      {WriteAllAlgo::kX, "X"},
      {WriteAllAlgo::kCombinedVX, "VX"},
  };
  const char* kAdversaries[] = {"none", "random", "burst", "thrashing",
                                "chaos"};

  for (const auto& algo : kAlgos) {
    for (const char* adversary : kAdversaries) {
      // Mode 0 is the reference; modes 1 (cycle_threads) and 2 (batch) must
      // reproduce its bytes exactly.
      std::string reference_binary;
      for (int mode = 0; mode < 3; ++mode) {
        SCOPED_TRACE(std::string(algo.name) + " / " + adversary + " / mode " +
                     std::to_string(mode));
        const MatrixCell cell{algo.algo, algo.name, adversary, mode};

        std::ostringstream jsonl_os;
        JsonlTraceSink jsonl_sink(jsonl_os);
        const WriteAllOutcome out = run_cell(cell, jsonl_sink);
        const std::string jsonl = jsonl_os.str();

        std::ostringstream binary_os;
        {
          BinaryTraceWriter binary_sink(binary_os);
          run_cell(cell, binary_sink);
        }
        const std::string binary = binary_os.str();

        // The compact encoding earns its keep on every cell.
        ASSERT_FALSE(jsonl.empty());
        EXPECT_LT(binary.size(), jsonl.size() / 3);

        // Lossless, byte-exact conversion both ways.
        EXPECT_EQ(reencode(binary, "jsonl"), jsonl);
        EXPECT_EQ(reencode(jsonl, "binary"), binary);

        // Bit-identical across engine modes.
        if (mode == 0) {
          reference_binary = binary;
        } else {
          EXPECT_EQ(binary, reference_binary);
        }

        // The aggregator's reconstruction equals the engine's tally exactly,
        // from either transport.
        for (const std::string* encoded : {&binary, &jsonl}) {
          std::istringstream in(*encoded);
          StreamAggregator aggregator;
          const std::unique_ptr<TraceReader> reader = open_trace_reader(in);
          replay_trace(*reader, aggregator);
          const WorkTally& rebuilt = aggregator.tally();
          const WorkTally& tally = out.run.tally;
          EXPECT_EQ(rebuilt.completed_work, tally.completed_work);
          EXPECT_EQ(rebuilt.attempted_work, tally.attempted_work);
          EXPECT_EQ(rebuilt.failures, tally.failures);
          EXPECT_EQ(rebuilt.restarts, tally.restarts);
          EXPECT_EQ(rebuilt.slots, tally.slots);
          EXPECT_EQ(rebuilt.halted, tally.halted);
          EXPECT_EQ(rebuilt.peak_live, tally.peak_live);
          EXPECT_TRUE(aggregator.check().empty());
          EXPECT_TRUE(aggregator.run_ended());
          EXPECT_EQ(aggregator.goal_met(), out.solved);
        }
      }
    }
  }
}

// Decoded events compare equal field-for-field with what the engine emitted
// (operator== includes phase_name by content), not just byte-for-byte.
TEST(BinaryTraceRoundTrip, DecodedEventsMatchCollectedEvents) {
  BurstAdversary adversary({.period = 4, .count = 8});
  CollectingTraceSink collected;
  EngineOptions options;
  options.sink = &collected;
  const auto out = run_writeall(WriteAllAlgo::kV, {.n = 256, .p = 32, .seed = 5},
                                adversary, options);
  ASSERT_TRUE(out.solved);

  std::ostringstream binary_os;
  {
    BinaryTraceWriter writer(binary_os);
    for (const TraceEvent& event : collected.events()) writer.on_event(event);
  }
  std::istringstream in(binary_os.str());
  BinaryTraceReader reader(in);
  TraceEvent event;
  std::size_t i = 0;
  while (reader.next(event)) {
    ASSERT_LT(i, collected.events().size());
    EXPECT_EQ(event, collected.events()[i]) << "event " << i;
    ++i;
  }
  EXPECT_EQ(i, collected.events().size());
}

// The aggregator as a direct engine sink reproduces RunResult::phases.
TEST(StreamAggregator, PhasesMatchEngineAttribution) {
  BurstAdversary adversary({.period = 4, .count = 8});
  StreamAggregator aggregator;
  EngineOptions options;
  options.sink = &aggregator;
  options.attribute_phases = true;
  const auto out = run_writeall(WriteAllAlgo::kV, {.n = 256, .p = 32, .seed = 5},
                                adversary, options);
  ASSERT_TRUE(out.solved);
  ASSERT_EQ(aggregator.phases().size(), out.run.phases.size());
  for (std::size_t i = 0; i < out.run.phases.size(); ++i) {
    const PhaseWork& expected = out.run.phases[i];
    const PhaseWork& actual = aggregator.phases()[i];
    EXPECT_EQ(actual.name, expected.name);
    EXPECT_EQ(actual.completed_work, expected.completed_work);
    EXPECT_EQ(actual.attempted_work, expected.attempted_work);
    EXPECT_EQ(actual.failures, expected.failures);
    EXPECT_EQ(actual.restarts, expected.restarts);
    EXPECT_EQ(actual.slots, expected.slots);
  }
}

// ---------------------------------------------------------------------------
// Incremental decoding

// A trace with at least one of every record tag, built by hand.
std::string sample_binary_trace() {
  std::ostringstream os;
  {
    BinaryTraceWriter writer(os);
    TraceEvent e;
    e.kind = TraceEventKind::kPhase;
    e.slot = 0;
    e.phase = 0;
    e.phase_name = "work";
    writer.on_event(e);
    e = {};
    e.kind = TraceEventKind::kSlot;
    e.started = 300;  // multi-byte varint
    e.completed = 2;
    e.failures = 1;
    e.restarts = 1;
    writer.on_event(e);
    e = {};
    e.kind = TraceEventKind::kCommit;
    e.writes = 2;
    writer.on_event(e);
    e = {};
    e.kind = TraceEventKind::kFailure;
    e.pid = 129;
    writer.on_event(e);
    e = {};
    e.kind = TraceEventKind::kRestart;
    e.pid = 3;
    writer.on_event(e);
    e = {};
    e.kind = TraceEventKind::kHalt;
    e.slot = 1;
    e.pid = 7;
    writer.on_event(e);
    e = {};
    e.kind = TraceEventKind::kRunEnd;
    e.slot = 2;
    e.goal_met = true;
    writer.on_event(e);
  }
  return os.str();
}

TEST(BinaryTraceDecoder, ByteAtATimeMatchesWholeStream) {
  const std::string bytes = sample_binary_trace();

  std::vector<TraceEvent> whole;
  {
    BinaryTraceDecoder decoder;
    std::size_t pos = 0;
    TraceEvent event;
    while (decoder.decode(bytes, pos, event) ==
           BinaryTraceDecoder::Result::kEvent) {
      event.phase_name = {};  // views die with the decoder; compare the rest
      whole.push_back(event);
    }
    EXPECT_EQ(pos, bytes.size());
  }
  ASSERT_EQ(whole.size(), 7u);

  // Feed the same stream one byte at a time: kNeedMore must never advance
  // pos, and exactly the same events must come out.
  BinaryTraceDecoder decoder;
  std::string fed;
  std::size_t pos = 0;
  std::vector<TraceEvent> incremental;
  for (char byte : bytes) {
    fed.push_back(byte);
    TraceEvent event;
    const std::size_t before = pos;
    while (decoder.decode(fed, pos, event) ==
           BinaryTraceDecoder::Result::kEvent) {
      event.phase_name = {};
      incremental.push_back(event);
    }
    EXPECT_GE(pos, before);
  }
  EXPECT_EQ(pos, bytes.size());
  ASSERT_EQ(incremental.size(), whole.size());
  for (std::size_t i = 0; i < whole.size(); ++i) {
    EXPECT_EQ(incremental[i], whole[i]) << "event " << i;
  }
}

TEST(JsonlTraceDecoder, UnterminatedLineIsNeedMore) {
  JsonlTraceDecoder decoder;
  TraceEvent event;
  std::size_t pos = 0;
  const std::string partial = "{\"e\":\"slot\",\"t\":0,\"started\":1,"
                              "\"completed\":1,\"failures\":0";
  EXPECT_EQ(decoder.decode(partial, pos, event),
            JsonlTraceDecoder::Result::kNeedMore);
  EXPECT_EQ(pos, 0u);
  const std::string whole = partial + ",\"restarts\":0}\n";
  EXPECT_EQ(decoder.decode(whole, pos, event),
            JsonlTraceDecoder::Result::kEvent);
  EXPECT_EQ(pos, whole.size());
  EXPECT_EQ(event.kind, TraceEventKind::kSlot);
  EXPECT_EQ(event.started, 1u);
}

// ---------------------------------------------------------------------------
// Malformed input

// Every truncation point of a valid stream must surface as TraceFormatError
// (mid-record) or a clean short stream (record boundary) — never garbage
// events or a hang.
TEST(BinaryTraceErrors, EveryTruncationPointIsCleanOrThrows) {
  const std::string bytes = sample_binary_trace();
  std::size_t clean = 0;
  std::size_t thrown = 0;
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::istringstream in(bytes.substr(0, cut));
    try {
      BinaryTraceReader reader(in);
      TraceEvent event;
      while (reader.next(event)) {
      }
      ++clean;
    } catch (const TraceFormatError&) {
      ++thrown;
    }
  }
  // The header and every record interior throw; only whole-record prefixes
  // (7 records + the bare header) read cleanly. cut == 0 throws too: an
  // empty stream that was supposed to be binary is a truncated header.
  EXPECT_EQ(clean, 7u);
  EXPECT_EQ(thrown, bytes.size() - 7u);
}

TEST(BinaryTraceErrors, RejectsBadMagicVersionFlagsAndTag) {
  const std::string good = sample_binary_trace();

  auto expect_throws = [](const std::string& bytes, const char* what) {
    std::istringstream in(bytes);
    BinaryTraceReader reader(in);
    TraceEvent event;
    EXPECT_THROW({ while (reader.next(event)) {} }, TraceFormatError) << what;
  };

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  expect_throws(bad_magic, "magic");

  std::string bad_version = good;
  bad_version[4] = 9;
  expect_throws(bad_version, "version");

  std::string bad_flags = good;
  bad_flags[6] = 0x40;
  expect_throws(bad_flags, "flags");

  std::string bad_tag = good;
  bad_tag[kBinaryTraceHeaderBytes] = 0x63;
  expect_throws(bad_tag, "tag");

  // run_end carries exactly three defined flag bits.
  std::string bad_run_end = good;
  bad_run_end[bad_run_end.size() - 1] = char(0x08);
  expect_throws(bad_run_end, "run_end flags");

  // A varint of eleven continuation bytes can encode nothing.
  std::string overlong = good.substr(0, kBinaryTraceHeaderBytes);
  overlong += char(0);  // slot tag
  overlong.append(11, char(0x80));
  expect_throws(overlong, "overlong varint");
}

TEST(BinaryTraceErrors, SniffRejectsEmptyAndForeignStreams) {
  std::istringstream empty("");
  EXPECT_THROW(open_trace_reader(empty), TraceFormatError);
  std::istringstream foreign("#!/bin/sh\n");
  EXPECT_THROW(open_trace_reader(foreign), TraceFormatError);
}

TEST(BinaryTraceErrors, JsonlRejectsGarbageAndUnknownKinds) {
  auto expect_throws = [](const std::string& text) {
    std::istringstream in(text);
    JsonlTraceReader reader(in);
    TraceEvent event;
    EXPECT_THROW({ while (reader.next(event)) {} }, TraceFormatError) << text;
  };
  expect_throws("{not json}\n");
  expect_throws("{\"e\":\"warp\",\"t\":0}\n");           // unknown kind
  expect_throws("{\"e\":\"commit\",\"t\":0}\n");          // missing writes
  expect_throws("{\"e\":\"slot\",\"t\":0,\"started\":1,"  // truncated line
                "\"completed\":1,\"failures\":0");
}

TEST(BinaryTraceErrors, WriterRejectsSlotRegression) {
  std::ostringstream os;
  BinaryTraceWriter writer(os);
  TraceEvent event;
  event.kind = TraceEventKind::kSlot;
  event.slot = 5;
  writer.on_event(event);
  event.slot = 3;
  EXPECT_THROW(writer.on_event(event), TraceFormatError);
}

TEST(BinaryTraceErrors, MakeSinkRejectsUnknownFormat) {
  std::ostringstream os;
  EXPECT_NO_THROW(make_trace_sink(os, "jsonl"));
  EXPECT_NO_THROW(make_trace_sink(os, "binary"));
  EXPECT_NO_THROW(make_trace_sink(os, "csv"));
  EXPECT_THROW(make_trace_sink(os, "protobuf"), ConfigError);
}

TEST(BinaryTraceFormat, PathDefaults) {
  EXPECT_EQ(trace_format_for_path("run.bin"), "binary");
  EXPECT_EQ(trace_format_for_path("run.rft"), "binary");
  EXPECT_EQ(trace_format_for_path("run.csv"), "csv");
  EXPECT_EQ(trace_format_for_path("run.jsonl"), "jsonl");
  EXPECT_EQ(trace_format_for_path("run"), "jsonl");
}

// ---------------------------------------------------------------------------
// StreamAggregator::check on synthetic streams

TraceEvent slot_event(Slot slot, std::uint32_t started,
                      std::uint32_t completed, std::uint32_t failures = 0,
                      std::uint32_t restarts = 0) {
  TraceEvent e;
  e.kind = TraceEventKind::kSlot;
  e.slot = slot;
  e.started = started;
  e.completed = completed;
  e.failures = failures;
  e.restarts = restarts;
  return e;
}

TraceEvent commit_event(Slot slot, std::uint32_t writes) {
  TraceEvent e;
  e.kind = TraceEventKind::kCommit;
  e.slot = slot;
  e.writes = writes;
  return e;
}

TraceEvent run_end_event(Slot slot, bool goal_met = true) {
  TraceEvent e;
  e.kind = TraceEventKind::kRunEnd;
  e.slot = slot;
  e.goal_met = goal_met;
  return e;
}

TEST(StreamAggregatorCheck, CleanStreamPasses) {
  StreamAggregator agg;
  agg.on_event(slot_event(0, 4, 4));
  agg.on_event(commit_event(0, 4));
  agg.on_event(slot_event(1, 4, 3, /*failures=*/1));
  agg.on_event(commit_event(1, 3));
  TraceEvent failure;
  failure.kind = TraceEventKind::kFailure;
  failure.slot = 1;
  failure.pid = 2;
  agg.on_event(failure);
  agg.on_event(run_end_event(2));
  EXPECT_TRUE(agg.check().empty()) << agg.check().front();
  EXPECT_EQ(agg.tally().completed_work, 7u);
  EXPECT_EQ(agg.tally().failures, 1u);
}

TEST(StreamAggregatorCheck, FlagsMissingRunEnd) {
  StreamAggregator agg;
  agg.on_event(slot_event(0, 2, 2));
  agg.on_event(commit_event(0, 2));
  const auto violations = agg.check();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("run_end"), std::string::npos);
}

TEST(StreamAggregatorCheck, FlagsFailureEventCountMismatch) {
  StreamAggregator agg;
  agg.on_event(slot_event(0, 2, 1, /*failures=*/1));  // claims 1 failure...
  agg.on_event(commit_event(0, 1));
  agg.on_event(run_end_event(1));  // ...but no kFailure event follows
  const auto violations = agg.check();
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("failure"), std::string::npos);
}

TEST(StreamAggregatorCheck, FlagsOutOfOrderEvents) {
  StreamAggregator agg;
  agg.on_event(slot_event(1, 2, 2));
  agg.on_event(commit_event(1, 2));
  agg.on_event(slot_event(0, 2, 2));  // slot regression
  agg.on_event(commit_event(0, 2));
  agg.on_event(run_end_event(2));
  bool flagged = false;
  for (const std::string& v : agg.check()) {
    flagged |= v.find("slot regression") != std::string::npos;
  }
  EXPECT_TRUE(flagged);
}

TEST(StreamAggregatorCheck, FlagsCommitSlotMismatch) {
  StreamAggregator agg;
  agg.on_event(slot_event(0, 2, 2));  // no commit for this slot
  agg.on_event(run_end_event(1));
  bool flagged = false;
  for (const std::string& v : agg.check()) {
    flagged |= v.find("commit") != std::string::npos;
  }
  EXPECT_TRUE(flagged);
}

TEST(StreamAggregatorCheck, FlagsEventsAfterRunEnd) {
  StreamAggregator agg;
  agg.on_event(slot_event(0, 2, 2));
  agg.on_event(commit_event(0, 2));
  agg.on_event(run_end_event(1));
  agg.on_event(slot_event(1, 2, 2));
  agg.on_event(commit_event(1, 2));
  bool flagged = false;
  for (const std::string& v : agg.check()) {
    flagged |= v.find("run_end") != std::string::npos;
  }
  EXPECT_TRUE(flagged);
}

TEST(StreamAggregatorWindow, RatesOverTrailingSlots) {
  StreamAggregator agg(/*window_slots=*/4);
  // Eight slots; the last four each complete 2 of 3 started with 1 failure.
  for (Slot s = 0; s < 8; ++s) {
    const bool late = s >= 4;
    agg.on_event(slot_event(s, late ? 3 : 10, late ? 2 : 10,
                            late ? 1 : 0));
    agg.on_event(commit_event(s, late ? 2 : 10));
  }
  EXPECT_EQ(agg.window_capacity(), 4u);
  EXPECT_EQ(agg.window_filled(), 4u);
  EXPECT_DOUBLE_EQ(agg.window_throughput(), 2.0);
  EXPECT_DOUBLE_EQ(agg.window_failure_rate(), 1.0);
  EXPECT_DOUBLE_EQ(agg.window_restart_rate(), 0.0);
  EXPECT_DOUBLE_EQ(agg.window_live_mean(), 3.0);
}

}  // namespace
}  // namespace rfsp
