// Chaos testing: a decision fuzzer that mixes every legal adversary move —
// mid-cycle failures, post-write failures, fail-then-restart in one slot,
// delayed restarts, and (in bit-atomic mode) torn writes — against the
// fault-tolerant algorithms and the simulator, across many seeds. The
// engine's validation provides the legality oracle (any AdversaryViolation
// here is a bug in the fuzzer's clamping, any ModelViolation a bug in an
// algorithm), and the postcondition provides correctness.
//
// Sweep width: seeds 1..RFSP_CHAOS_SEEDS (default 25; the nightly CI job
// raises it). A failing seed auto-records its fault schedule as a
// self-describing JSONL reproducer under $RFSP_CHAOS_RECORD_DIR (default
// ".") — replay it with `writeall_cli --replay FILE` and, once vetted, file
// the shrunk version under tests/corpus/ for the regression suite.
#include <gtest/gtest.h>

#include <cstdlib>

#include "programs/programs.hpp"
#include "replay/repro.hpp"
#include "replay/schedule.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"
#include "writeall/runner.hpp"

namespace rfsp {
namespace {

using ::rfsp::testing::ChaosAdversary;

std::uint64_t chaos_seed_limit() {
  if (const char* env = std::getenv("RFSP_CHAOS_SEEDS")) {
    const std::uint64_t n = std::strtoull(env, nullptr, 10);
    if (n > 0) return n;
  }
  return 25;
}

// Archive a failing run's schedule so the seed is reproducible without the
// fuzzer: $RFSP_CHAOS_RECORD_DIR/<name>.jsonl (best-effort — recording
// failures must not mask the original test failure).
void record_failure(const ReproSpec& spec, FaultSchedule schedule,
                    ProbeStatus status, const std::string& name) {
  const char* dir = std::getenv("RFSP_CHAOS_RECORD_DIR");
  const std::string path =
      std::string(dir != nullptr ? dir : ".") + "/" + name + ".jsonl";
  try {
    write_meta(spec, schedule, status, "auto-recorded by chaos_test");
    save_schedule(schedule, path);
    std::cerr << "chaos failure schedule recorded to " << path << "\n";
  } catch (const std::exception& e) {
    std::cerr << "could not record chaos schedule: " << e.what() << "\n";
  }
}

class ChaosSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSeeds, WriteAllSurvives) {
  const std::uint64_t seed = GetParam();
  for (WriteAllAlgo algo : {WriteAllAlgo::kX, WriteAllAlgo::kCombinedVX,
                            WriteAllAlgo::kAcc}) {
    ChaosAdversary inner(seed * 101 + 7, /*allow_torn=*/false);
    FaultSchedule schedule;
    RecordingAdversary adversary(inner, schedule);
    const WriteAllConfig config{.n = 100, .p = 25, .seed = seed};
    const ReproSpec spec{.algo = algo, .n = config.n, .p = config.p,
                         .seed = seed};
    const std::string tag = std::string("chaos_") + std::string(to_string(algo)) +
                            "_s" + std::to_string(seed);
    try {
      const auto out = run_writeall(algo, config, adversary);
      if (!out.solved) {
        record_failure(spec, schedule, ProbeStatus::kUnsolved, tag);
      }
      ASSERT_TRUE(out.solved) << to_string(algo) << " seed=" << seed;
    } catch (const ModelViolation& mv) {
      record_failure(spec, schedule, ProbeStatus::kModelViolation, tag);
      FAIL() << to_string(algo) << " seed=" << seed << ": " << mv.what();
    } catch (const AdversaryViolation& av) {
      record_failure(spec, schedule, ProbeStatus::kAdversaryViolation, tag);
      FAIL() << to_string(algo) << " seed=" << seed << ": " << av.what();
    }
  }
}

TEST_P(ChaosSeeds, SimulatorSurvives) {
  const std::uint64_t seed = GetParam();
  PrefixSumProgram program({5, 3, 8, 1, 9, 2, 7, 4, 6, 10, 11, 12});
  ChaosAdversary adversary(seed * 131 + 5, /*allow_torn=*/false);
  const SimResult r =
      simulate(program, adversary, {.physical_processors = 6});
  ASSERT_TRUE(r.completed) << "seed=" << seed;
  EXPECT_EQ(r.memory, reference_run(program)) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSeeds,
                         ::testing::Range<std::uint64_t>(
                             1, chaos_seed_limit() + 1),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "s" + std::to_string(i.param);
                         });

// --- Memory-model sweeps (pram/faults.hpp, docs/fault-models.md) -------------
//
// Same fuzzer, non-reliable backends: the chaos adversary additionally
// plays the model-specific moves (cell_faults / cache_drop). Suite names
// keep the Chaos prefix so the nightly `ctest -R 'Chaos'` sweep picks them
// up automatically.

class ChaosFaultyCells : public ::testing::TestWithParam<std::uint64_t> {};

// Static faults are fully remapped (auto spares), but run-time injections
// are never remapped — a fault landing on an x cell makes the instance
// unsolvable (or destroys an already-visited cell after the fact), and
// garbage in a progress-tree cell can convince every processor the root is
// done (they all halt: deadlock, goal unmet). The contract here is "solve,
// or stop loudly (slot limit / deadlock), or the recorded schedule proves
// the adversary struck the x array itself": no violation, no crash, no
// unexplained wrong answer.
TEST_P(ChaosFaultyCells, WriteAllSolvesOrStopsLoudly) {
  const std::uint64_t seed = GetParam();
  const WriteAllConfig config{.n = 100, .p = 25, .seed = seed};
  EngineOptions options;
  options.max_slots = 5000;  // injected faults can preclude the goal
  options.memory_model = MemoryModel::kFaultyCells;
  options.faulty_cells = {.seed = seed, .cells = 8};
  const auto probe_program = make_writeall(WriteAllAlgo::kX, config);
  const Addr memory_size = probe_program->memory_size();
  const Addr x_base = probe_program->x_base();
  ChaosAdversary inner(seed * 151 + 11, /*allow_torn=*/false,
                       MemoryModel::kFaultyCells, memory_size);
  FaultSchedule schedule;
  RecordingAdversary adversary(inner, schedule);
  ReproSpec spec{.algo = WriteAllAlgo::kX, .n = config.n, .p = config.p,
                 .seed = seed, .max_slots = options.max_slots};
  spec.memory_model = options.memory_model;
  spec.faulty_cells = options.faulty_cells;
  const std::string tag = "chaos_faulty_cells_s" + std::to_string(seed);
  try {
    const auto out = run_writeall(WriteAllAlgo::kX, config, adversary, options);
    const bool loud = out.run.slot_limit || out.run.deadlock;
    bool x_struck = false;
    for (const ScheduleEntry& entry : schedule.entries) {
      for (const Addr a : entry.decision.cell_faults) {
        x_struck |= a >= x_base && a < x_base + config.n;
      }
    }
    if (!out.solved && !loud && !x_struck) {
      record_failure(spec, schedule, ProbeStatus::kUnsolved, tag);
    }
    ASSERT_TRUE(out.solved || loud || x_struck) << "seed=" << seed;
  } catch (const ModelViolation& mv) {
    record_failure(spec, schedule, ProbeStatus::kModelViolation, tag);
    FAIL() << "seed=" << seed << ": " << mv.what();
  } catch (const AdversaryViolation& av) {
    record_failure(spec, schedule, ProbeStatus::kAdversaryViolation, tag);
    FAIL() << "seed=" << seed << ": " << av.what();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosFaultyCells,
                         ::testing::Range<std::uint64_t>(
                             1, chaos_seed_limit() + 1),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "s" + std::to_string(i.param);
                         });

class ChaosPersistentCache : public ::testing::TestWithParam<std::uint64_t> {};

// Amnesia only delays progress (dropped caches are re-done work), so under
// the persistent-cache model X must still solve outright.
TEST_P(ChaosPersistentCache, WriteAllSurvives) {
  const std::uint64_t seed = GetParam();
  const WriteAllConfig config{.n = 100, .p = 25, .seed = seed};
  EngineOptions options;
  options.max_slots = 20000;
  options.memory_model = MemoryModel::kPersistentCache;
  options.persistent_cache = {.persist_every = 4};
  ChaosAdversary inner(seed * 163 + 3, /*allow_torn=*/false,
                       MemoryModel::kPersistentCache, 0);
  FaultSchedule schedule;
  RecordingAdversary adversary(inner, schedule);
  ReproSpec spec{.algo = WriteAllAlgo::kX, .n = config.n, .p = config.p,
                 .seed = seed, .max_slots = options.max_slots};
  spec.memory_model = options.memory_model;
  spec.persistent_cache = options.persistent_cache;
  const std::string tag = "chaos_persistent_cache_s" + std::to_string(seed);
  try {
    const auto out = run_writeall(WriteAllAlgo::kX, config, adversary, options);
    if (!out.solved) {
      record_failure(spec, schedule, ProbeStatus::kUnsolved, tag);
    }
    ASSERT_TRUE(out.solved) << "seed=" << seed;
    EXPECT_GT(out.run.tally.persists, 0u);
  } catch (const ModelViolation& mv) {
    record_failure(spec, schedule, ProbeStatus::kModelViolation, tag);
    FAIL() << "seed=" << seed << ": " << mv.what();
  } catch (const AdversaryViolation& av) {
    record_failure(spec, schedule, ProbeStatus::kAdversaryViolation, tag);
    FAIL() << "seed=" << seed << ": " << av.what();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosPersistentCache,
                         ::testing::Range<std::uint64_t>(
                             1, chaos_seed_limit() + 1),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "s" + std::to_string(i.param);
                         });

TEST(ChaosTorn, XSurvivesTornWritesWithBitSafeFreeStructures) {
  // Algorithm X's shared cells are all single-logical-value writes whose
  // consumers re-validate (positions are re-read, markers are 0/1, done
  // bits monotone) — but a torn write CAN leave garbage in a cell, so this
  // is strictly a robustness probe: X must either solve or fail loudly,
  // never return a wrong "solved". With payload-threatening tears capped
  // at whole-word boundaries (keep_bits 0 — drop the write entirely, the
  // only tear that cannot fabricate values X would misparse), X solves.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    class DropWrites final : public Adversary {
     public:
      explicit DropWrites(std::uint64_t seed) : rng_(seed) {}
      std::string_view name() const override { return "drop-writes"; }
      FaultDecision decide(const MachineView& view) override {
        FaultDecision d;
        std::size_t abortable = 0;
        for (Pid pid = 0; pid < view.processors(); ++pid) {
          if (view.trace(pid).started) ++abortable;
        }
        if (abortable > 0) --abortable;
        for (Pid pid = 0; pid < view.processors(); ++pid) {
          const CycleTrace& trace = view.trace(pid);
          if (!trace.started || trace.writes.empty()) continue;
          if (abortable == 0) break;
          if (!rng_.chance(0.15)) continue;
          // keep_bits = 0: the write vanishes mid-flight — a pure torn
          // failure with no fabricated bits.
          d.torn.push_back({pid, rng_.below(trace.writes.size()), 0});
          d.restart.push_back(pid);
          --abortable;
        }
        return d;
      }

     private:
      Rng rng_;
    };

    DropWrites adversary(seed);
    EngineOptions options;
    options.bit_atomic_writes = true;
    const auto out = run_writeall(WriteAllAlgo::kX,
                                  {.n = 64, .p = 16, .seed = seed},
                                  adversary, options);
    EXPECT_TRUE(out.solved) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace rfsp
