// Chaos testing: a decision fuzzer that mixes every legal adversary move —
// mid-cycle failures, post-write failures, fail-then-restart in one slot,
// delayed restarts, and (in bit-atomic mode) torn writes — against the
// fault-tolerant algorithms and the simulator, across many seeds. The
// engine's validation provides the legality oracle (any AdversaryViolation
// here is a bug in the fuzzer's clamping, any ModelViolation a bug in an
// algorithm), and the postcondition provides correctness.
//
// Sweep width: seeds 1..RFSP_CHAOS_SEEDS (default 25; the nightly CI job
// raises it). A failing seed auto-records its fault schedule as a
// self-describing JSONL reproducer under $RFSP_CHAOS_RECORD_DIR (default
// ".") — replay it with `writeall_cli --replay FILE` and, once vetted, file
// the shrunk version under tests/corpus/ for the regression suite.
#include <gtest/gtest.h>

#include <cstdlib>

#include "programs/programs.hpp"
#include "replay/repro.hpp"
#include "replay/schedule.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"
#include "writeall/runner.hpp"

namespace rfsp {
namespace {

using ::rfsp::testing::ChaosAdversary;

std::uint64_t chaos_seed_limit() {
  if (const char* env = std::getenv("RFSP_CHAOS_SEEDS")) {
    const std::uint64_t n = std::strtoull(env, nullptr, 10);
    if (n > 0) return n;
  }
  return 25;
}

// Archive a failing run's schedule so the seed is reproducible without the
// fuzzer: $RFSP_CHAOS_RECORD_DIR/<name>.jsonl (best-effort — recording
// failures must not mask the original test failure).
void record_failure(const ReproSpec& spec, FaultSchedule schedule,
                    ProbeStatus status, const std::string& name) {
  const char* dir = std::getenv("RFSP_CHAOS_RECORD_DIR");
  const std::string path =
      std::string(dir != nullptr ? dir : ".") + "/" + name + ".jsonl";
  try {
    write_meta(spec, schedule, status, "auto-recorded by chaos_test");
    save_schedule(schedule, path);
    std::cerr << "chaos failure schedule recorded to " << path << "\n";
  } catch (const std::exception& e) {
    std::cerr << "could not record chaos schedule: " << e.what() << "\n";
  }
}

class ChaosSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSeeds, WriteAllSurvives) {
  const std::uint64_t seed = GetParam();
  for (WriteAllAlgo algo : {WriteAllAlgo::kX, WriteAllAlgo::kCombinedVX,
                            WriteAllAlgo::kAcc}) {
    ChaosAdversary inner(seed * 101 + 7, /*allow_torn=*/false);
    FaultSchedule schedule;
    RecordingAdversary adversary(inner, schedule);
    const WriteAllConfig config{.n = 100, .p = 25, .seed = seed};
    const ReproSpec spec{.algo = algo, .n = config.n, .p = config.p,
                         .seed = seed};
    const std::string tag = std::string("chaos_") + std::string(to_string(algo)) +
                            "_s" + std::to_string(seed);
    try {
      const auto out = run_writeall(algo, config, adversary);
      if (!out.solved) {
        record_failure(spec, schedule, ProbeStatus::kUnsolved, tag);
      }
      ASSERT_TRUE(out.solved) << to_string(algo) << " seed=" << seed;
    } catch (const ModelViolation& mv) {
      record_failure(spec, schedule, ProbeStatus::kModelViolation, tag);
      FAIL() << to_string(algo) << " seed=" << seed << ": " << mv.what();
    } catch (const AdversaryViolation& av) {
      record_failure(spec, schedule, ProbeStatus::kAdversaryViolation, tag);
      FAIL() << to_string(algo) << " seed=" << seed << ": " << av.what();
    }
  }
}

TEST_P(ChaosSeeds, SimulatorSurvives) {
  const std::uint64_t seed = GetParam();
  PrefixSumProgram program({5, 3, 8, 1, 9, 2, 7, 4, 6, 10, 11, 12});
  ChaosAdversary adversary(seed * 131 + 5, /*allow_torn=*/false);
  const SimResult r =
      simulate(program, adversary, {.physical_processors = 6});
  ASSERT_TRUE(r.completed) << "seed=" << seed;
  EXPECT_EQ(r.memory, reference_run(program)) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSeeds,
                         ::testing::Range<std::uint64_t>(
                             1, chaos_seed_limit() + 1),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "s" + std::to_string(i.param);
                         });

TEST(ChaosTorn, XSurvivesTornWritesWithBitSafeFreeStructures) {
  // Algorithm X's shared cells are all single-logical-value writes whose
  // consumers re-validate (positions are re-read, markers are 0/1, done
  // bits monotone) — but a torn write CAN leave garbage in a cell, so this
  // is strictly a robustness probe: X must either solve or fail loudly,
  // never return a wrong "solved". With payload-threatening tears capped
  // at whole-word boundaries (keep_bits 0 — drop the write entirely, the
  // only tear that cannot fabricate values X would misparse), X solves.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    class DropWrites final : public Adversary {
     public:
      explicit DropWrites(std::uint64_t seed) : rng_(seed) {}
      std::string_view name() const override { return "drop-writes"; }
      FaultDecision decide(const MachineView& view) override {
        FaultDecision d;
        std::size_t abortable = 0;
        for (Pid pid = 0; pid < view.processors(); ++pid) {
          if (view.trace(pid).started) ++abortable;
        }
        if (abortable > 0) --abortable;
        for (Pid pid = 0; pid < view.processors(); ++pid) {
          const CycleTrace& trace = view.trace(pid);
          if (!trace.started || trace.writes.empty()) continue;
          if (abortable == 0) break;
          if (!rng_.chance(0.15)) continue;
          // keep_bits = 0: the write vanishes mid-flight — a pure torn
          // failure with no fabricated bits.
          d.torn.push_back({pid, rng_.below(trace.writes.size()), 0});
          d.restart.push_back(pid);
          --abortable;
        }
        return d;
      }

     private:
      Rng rng_;
    };

    DropWrites adversary(seed);
    EngineOptions options;
    options.bit_atomic_writes = true;
    const auto out = run_writeall(WriteAllAlgo::kX,
                                  {.n = 64, .p = 16, .seed = seed},
                                  adversary, options);
    EXPECT_TRUE(out.solved) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace rfsp
