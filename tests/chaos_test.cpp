// Chaos testing: a decision fuzzer that mixes every legal adversary move —
// mid-cycle failures, post-write failures, fail-then-restart in one slot,
// delayed restarts, and (in bit-atomic mode) torn writes — against the
// fault-tolerant algorithms and the simulator, across many seeds. The
// engine's validation provides the legality oracle (any AdversaryViolation
// here is a bug in the fuzzer's clamping, any ModelViolation a bug in an
// algorithm), and the postcondition provides correctness.
#include <gtest/gtest.h>

#include "fault/adversary.hpp"
#include "programs/programs.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "writeall/runner.hpp"

namespace rfsp {
namespace {

class ChaosAdversary final : public Adversary {
 public:
  ChaosAdversary(std::uint64_t seed, bool allow_torn)
      : rng_(seed), allow_torn_(allow_torn) {}

  std::string_view name() const override { return "chaos"; }

  FaultDecision decide(const MachineView& view) override {
    FaultDecision d;
    std::vector<Pid> started;
    for (Pid pid = 0; pid < view.processors(); ++pid) {
      if (view.trace(pid).started) started.push_back(pid);
    }

    // Keep at least one mid-cycle survivor (constraint 2(i)).
    std::size_t abortable = started.empty() ? 0 : started.size() - 1;
    for (const Pid pid : started) {
      if (!rng_.chance(0.25)) continue;
      const double move = rng_.uniform();
      if (move < 0.4 && abortable > 0) {
        d.fail_mid_cycle.push_back(pid);
        --abortable;
        if (rng_.chance(0.7)) d.restart.push_back(pid);  // same-slot revive
      } else if (move < 0.6) {
        d.fail_after_cycle.push_back(pid);
        if (rng_.chance(0.5)) d.restart.push_back(pid);
      } else if (allow_torn_ && abortable > 0 &&
                 !view.trace(pid).writes.empty()) {
        const std::size_t idx =
            rng_.below(view.trace(pid).writes.size());
        d.torn.push_back({pid, idx, static_cast<unsigned>(rng_.below(33))});
        --abortable;
        if (rng_.chance(0.7)) d.restart.push_back(pid);
      }
    }
    // Revive older casualties sluggishly.
    for (Pid pid = 0; pid < view.processors(); ++pid) {
      if (view.status(pid) == ProcStatus::kFailed && rng_.chance(0.4)) {
        d.restart.push_back(pid);
      }
    }
    return d;
  }

 private:
  Rng rng_;
  bool allow_torn_;
};

class ChaosSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSeeds, WriteAllSurvives) {
  const std::uint64_t seed = GetParam();
  for (WriteAllAlgo algo : {WriteAllAlgo::kX, WriteAllAlgo::kCombinedVX,
                            WriteAllAlgo::kAcc}) {
    ChaosAdversary adversary(seed * 101 + 7, /*allow_torn=*/false);
    const auto out =
        run_writeall(algo, {.n = 100, .p = 25, .seed = seed}, adversary);
    ASSERT_TRUE(out.solved) << to_string(algo) << " seed=" << seed;
  }
}

TEST_P(ChaosSeeds, SimulatorSurvives) {
  const std::uint64_t seed = GetParam();
  PrefixSumProgram program({5, 3, 8, 1, 9, 2, 7, 4, 6, 10, 11, 12});
  ChaosAdversary adversary(seed * 131 + 5, /*allow_torn=*/false);
  const SimResult r =
      simulate(program, adversary, {.physical_processors = 6});
  ASSERT_TRUE(r.completed) << "seed=" << seed;
  EXPECT_EQ(r.memory, reference_run(program)) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSeeds,
                         ::testing::Range<std::uint64_t>(1, 13),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "s" + std::to_string(i.param);
                         });

TEST(ChaosTorn, XSurvivesTornWritesWithBitSafeFreeStructures) {
  // Algorithm X's shared cells are all single-logical-value writes whose
  // consumers re-validate (positions are re-read, markers are 0/1, done
  // bits monotone) — but a torn write CAN leave garbage in a cell, so this
  // is strictly a robustness probe: X must either solve or fail loudly,
  // never return a wrong "solved". With payload-threatening tears capped
  // at whole-word boundaries (keep_bits 0 — drop the write entirely, the
  // only tear that cannot fabricate values X would misparse), X solves.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    class DropWrites final : public Adversary {
     public:
      explicit DropWrites(std::uint64_t seed) : rng_(seed) {}
      std::string_view name() const override { return "drop-writes"; }
      FaultDecision decide(const MachineView& view) override {
        FaultDecision d;
        std::size_t abortable = 0;
        for (Pid pid = 0; pid < view.processors(); ++pid) {
          if (view.trace(pid).started) ++abortable;
        }
        if (abortable > 0) --abortable;
        for (Pid pid = 0; pid < view.processors(); ++pid) {
          const CycleTrace& trace = view.trace(pid);
          if (!trace.started || trace.writes.empty()) continue;
          if (abortable == 0) break;
          if (!rng_.chance(0.15)) continue;
          // keep_bits = 0: the write vanishes mid-flight — a pure torn
          // failure with no fabricated bits.
          d.torn.push_back({pid, rng_.below(trace.writes.size()), 0});
          d.restart.push_back(pid);
          --abortable;
        }
        return d;
      }

     private:
      Rng rng_;
    };

    DropWrites adversary(seed);
    EngineOptions options;
    options.bit_atomic_writes = true;
    const auto out = run_writeall(WriteAllAlgo::kX,
                                  {.n = 64, .p = 16, .seed = seed},
                                  adversary, options);
    EXPECT_TRUE(out.solved) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace rfsp
