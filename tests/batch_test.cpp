// Batched SoA backend (EngineOptions::batch, pram/soa.hpp): bit-identity
// with the interpreter across algorithms, adversaries, and thread counts —
// same tallies, memory, trace stream, and checkpoints — plus the fallback
// gate (audit / read logging / tight budgets / unported programs keep the
// interpreter) and cross-mode checkpoint resume.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "fault/adversaries.hpp"
#include "fault/halving.hpp"
#include "fault/stalkers.hpp"
#include "obs/trace.hpp"
#include "pram/engine.hpp"
#include "writeall/algx.hpp"
#include "writeall/combined.hpp"
#include "writeall/runner.hpp"

#include "test_util.hpp"

namespace rfsp {
namespace {

using ::rfsp::testing::ChaosAdversary;
using ::rfsp::testing::LambdaProgram;

// One full observable run: outcome, tallies, final memory, goal counter,
// the structured trace-event stream, and periodic checkpoints.
struct FullOutcome {
  RunResult run;
  std::vector<Word> memory;
  std::optional<std::uint64_t> goal_unsat;
  bool batch_active = false;
  std::vector<TraceEvent> events;
  std::vector<EngineCheckpoint> checkpoints;
};

FullOutcome run_full(WriteAllAlgo algo, const WriteAllConfig& config,
                     Adversary& adversary, EngineOptions options) {
  options.record_trace = true;
  options.record_pattern = true;
  CollectingTraceSink sink;
  options.sink = &sink;
  FullOutcome out;
  options.checkpoint_every = 7;
  options.on_checkpoint = [&](const EngineCheckpoint& cp) {
    out.checkpoints.push_back(cp);
  };
  const auto program = make_writeall(algo, config);
  Engine engine(*program, options);
  out.batch_active = engine.batch_active();
  out.run = engine.run(adversary);
  const auto words = engine.memory().words();
  out.memory.assign(words.begin(), words.end());
  out.goal_unsat = engine.goal_unsatisfied();
  out.events = sink.events();
  return out;
}

void expect_identical(const FullOutcome& a, const FullOutcome& b,
                      const std::string& what) {
  EXPECT_EQ(a.run.goal_met, b.run.goal_met) << what;
  EXPECT_EQ(a.run.deadlock, b.run.deadlock) << what;
  EXPECT_EQ(a.run.slot_limit, b.run.slot_limit) << what;
  EXPECT_EQ(a.run.tally, b.run.tally) << what;
  EXPECT_EQ(a.memory, b.memory) << what;
  EXPECT_EQ(a.goal_unsat, b.goal_unsat) << what;

  // Slot-by-slot trace records.
  ASSERT_EQ(a.run.trace.size(), b.run.trace.size()) << what;
  for (std::size_t i = 0; i < a.run.trace.size(); ++i) {
    EXPECT_EQ(a.run.trace[i].started, b.run.trace[i].started) << what;
    EXPECT_EQ(a.run.trace[i].completed, b.run.trace[i].completed) << what;
    EXPECT_EQ(a.run.trace[i].failures, b.run.trace[i].failures) << what;
    EXPECT_EQ(a.run.trace[i].restarts, b.run.trace[i].restarts) << what;
  }

  // Recorded fault pattern (the adversary saw identical MachineViews).
  ASSERT_EQ(a.run.pattern.events().size(), b.run.pattern.events().size())
      << what;

  // Structured trace-event stream, field by field.
  ASSERT_EQ(a.events.size(), b.events.size()) << what;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    const TraceEvent& ea = a.events[i];
    const TraceEvent& eb = b.events[i];
    EXPECT_EQ(ea.kind, eb.kind) << what << " event " << i;
    EXPECT_EQ(ea.slot, eb.slot) << what << " event " << i;
    EXPECT_EQ(ea.pid, eb.pid) << what << " event " << i;
    EXPECT_EQ(ea.started, eb.started) << what << " event " << i;
    EXPECT_EQ(ea.completed, eb.completed) << what << " event " << i;
    EXPECT_EQ(ea.failures, eb.failures) << what << " event " << i;
    EXPECT_EQ(ea.restarts, eb.restarts) << what << " event " << i;
    EXPECT_EQ(ea.writes, eb.writes) << what << " event " << i;
    EXPECT_EQ(ea.phase, eb.phase) << what << " event " << i;
    EXPECT_EQ(ea.goal_met, eb.goal_met) << what << " event " << i;
    EXPECT_EQ(ea.deadlock, eb.deadlock) << what << " event " << i;
    EXPECT_EQ(ea.slot_limit, eb.slot_limit) << what << " event " << i;
  }

  // Checkpoints, including the serialized private states — this is the
  // byte-identity requirement on BatchKernel::save_lane.
  ASSERT_EQ(a.checkpoints.size(), b.checkpoints.size()) << what;
  for (std::size_t i = 0; i < a.checkpoints.size(); ++i) {
    EXPECT_EQ(a.checkpoints[i], b.checkpoints[i])
        << what << " checkpoint " << i;
  }
}

// Adversary factory. The post-order stalker is X-specific (it drives the
// descent's worst case from the X progress-tree geometry), so it covers X
// and VX; the iteration-synchronized W and V get the halving adversary as
// their targeted-deterministic row instead.
std::unique_ptr<Adversary> make_adversary(const std::string& name,
                                          WriteAllAlgo algo,
                                          const WriteAllConfig& config,
                                          std::uint64_t seed) {
  if (name == "random") {
    RandomAdversaryOptions opt;
    opt.fail_prob = 0.08;
    opt.restart_prob = 0.6;
    // W is fail-stop: restarts can prevent termination.
    if (algo == WriteAllAlgo::kW) opt.restart_prob = 0;
    opt.max_pattern = 400;
    return std::make_unique<RandomAdversary>(seed, opt);
  }
  if (name == "burst") {
    BurstAdversaryOptions opt;
    opt.period = 3;
    opt.count = 5;
    opt.restart = algo != WriteAllAlgo::kW;
    opt.max_pattern = 300;
    return std::make_unique<BurstAdversary>(opt);
  }
  if (name == "stalker") {
    if (algo == WriteAllAlgo::kX) {
      return std::make_unique<PostOrderStalker>(
          XLayout(config.base, config.base + config.n, config.n, config.p,
                  config.layout.tree_order));
    }
    if (algo == WriteAllAlgo::kCombinedVX) {
      return std::make_unique<PostOrderStalker>(
          CombinedLayout(config.base, config.base + config.n, config.n,
                         config.p, 0, 0, config.layout.tree_order)
              .x);
    }
    return std::make_unique<HalvingAdversary>(0, config.n);
  }
  if (name == "chaos") {
    return std::make_unique<ChaosAdversary>(seed, /*allow_torn=*/true);
  }
  return std::make_unique<NoFailures>();
}

void check_equivalence(WriteAllAlgo algo, const std::string& adversary_name,
                       std::size_t threads,
                       TreeOrder order = TreeOrder::kHeap) {
  const std::string what = std::string(to_string(algo)) + " x " +
                           adversary_name + " x threads=" +
                           std::to_string(threads) + " x " +
                           std::string(to_string(order));
  SCOPED_TRACE(what);
  const WriteAllConfig config{
      .n = 192, .p = 48, .seed = 5, .layout = {.tree_order = order}};
  const std::uint64_t seed = 77;

  EngineOptions options;
  options.max_slots = 4000;  // W need not terminate under restarts
  options.cycle_threads = threads;
  if (adversary_name == "chaos") options.bit_atomic_writes = true;

  const auto interp_adv = make_adversary(adversary_name, algo, config, seed);
  EngineOptions interp_opt = options;
  const FullOutcome interp = run_full(algo, config, *interp_adv, interp_opt);
  EXPECT_FALSE(interp.batch_active) << what;

  const auto batch_adv = make_adversary(adversary_name, algo, config, seed);
  EngineOptions batch_opt = options;
  batch_opt.batch = true;
  const FullOutcome batch = run_full(algo, config, *batch_adv, batch_opt);
  EXPECT_TRUE(batch.batch_active) << what;

  expect_identical(interp, batch, what);
}

// --- The equivalence matrix ------------------------------------------------

TEST(BatchEquivalence, FaultFree) {
  for (const WriteAllAlgo algo : {WriteAllAlgo::kW, WriteAllAlgo::kV,
                                  WriteAllAlgo::kX,
                                  WriteAllAlgo::kCombinedVX}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      check_equivalence(algo, "none", threads);
    }
  }
}

TEST(BatchEquivalence, RandomFaults) {
  for (const WriteAllAlgo algo : {WriteAllAlgo::kW, WriteAllAlgo::kV,
                                  WriteAllAlgo::kX,
                                  WriteAllAlgo::kCombinedVX}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      check_equivalence(algo, "random", threads);
    }
  }
}

TEST(BatchEquivalence, BurstFaults) {
  for (const WriteAllAlgo algo : {WriteAllAlgo::kW, WriteAllAlgo::kV,
                                  WriteAllAlgo::kX,
                                  WriteAllAlgo::kCombinedVX}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      check_equivalence(algo, "burst", threads);
    }
  }
}

TEST(BatchEquivalence, StalkerFaults) {
  for (const WriteAllAlgo algo : {WriteAllAlgo::kW, WriteAllAlgo::kV,
                                  WriteAllAlgo::kX,
                                  WriteAllAlgo::kCombinedVX}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      check_equivalence(algo, "stalker", threads);
    }
  }
}

TEST(BatchEquivalence, ChaosWithTornWrites) {
  for (const WriteAllAlgo algo : {WriteAllAlgo::kW, WriteAllAlgo::kV,
                                  WriteAllAlgo::kX,
                                  WriteAllAlgo::kCombinedVX}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      check_equivalence(algo, "chaos", threads);
    }
  }
}

// The vEB storage order is a pure address remap, so the interpreter/batch
// bit-identity contract must hold under it verbatim — including the veb
// X/VX kernel template instantiations and the stalker built from a veb
// layout.
TEST(BatchEquivalence, VebTreeOrder) {
  for (const WriteAllAlgo algo : {WriteAllAlgo::kW, WriteAllAlgo::kV,
                                  WriteAllAlgo::kX,
                                  WriteAllAlgo::kCombinedVX}) {
    for (const char* adversary : {"none", "random", "burst", "stalker",
                                  "chaos"}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        check_equivalence(algo, adversary, threads, TreeOrder::kVeb);
      }
    }
  }
}

// Worker lane-chunk sizing is a scheduling knob: chunks stay contiguous in
// ascending pid order, so every chunk size (including degenerate ones that
// leave trailing workers idle) must reproduce the same run bit for bit.
TEST(BatchEquivalence, LaneChunkInvariance) {
  const WriteAllConfig config{.n = 192, .p = 48, .seed = 5};
  EngineOptions base;
  base.max_slots = 4000;
  base.cycle_threads = 4;
  base.batch = true;
  ChaosAdversary ref_adv(77, /*allow_torn=*/false);
  const FullOutcome ref =
      run_full(WriteAllAlgo::kCombinedVX, config, ref_adv, base);
  for (const std::size_t chunk :
       {std::size_t{1}, std::size_t{7}, std::size_t{4096}}) {
    EngineOptions options = base;
    options.lane_chunk = chunk;
    ChaosAdversary adv(77, /*allow_torn=*/false);
    const FullOutcome out =
        run_full(WriteAllAlgo::kCombinedVX, config, adv, options);
    expect_identical(ref, out, "lane_chunk=" + std::to_string(chunk));
  }
}

// --- Cross-mode checkpoint resume ------------------------------------------

// A checkpoint captured in one mode must resume in the other and land on
// the straight run's exact outcome (the word streams are interchangeable).
TEST(BatchCheckpoint, ResumesAcrossModes) {
  for (const WriteAllAlgo algo : {WriteAllAlgo::kW, WriteAllAlgo::kV,
                                  WriteAllAlgo::kX,
                                  WriteAllAlgo::kCombinedVX}) {
   for (const TreeOrder order : {TreeOrder::kHeap, TreeOrder::kVeb}) {
    SCOPED_TRACE(std::string(to_string(algo)) + " x " +
                 std::string(to_string(order)));
    const WriteAllConfig config{
        .n = 48, .p = 12, .seed = 5, .layout = {.tree_order = order}};
    const std::uint64_t seed = 77;
    EngineOptions options;
    options.max_slots = 2000;

    ChaosAdversary straight_adv(seed, /*allow_torn=*/false);
    const WriteAllOutcome straight =
        run_writeall(algo, config, straight_adv, options);

    // Capture checkpoints from a *batched* run...
    std::vector<EngineCheckpoint> checkpoints;
    EngineOptions recording = options;
    recording.batch = true;
    recording.checkpoint_every = 1;
    recording.on_checkpoint = [&](const EngineCheckpoint& cp) {
      checkpoints.push_back(cp);
    };
    ChaosAdversary recording_adv(seed, /*allow_torn=*/false);
    const WriteAllOutcome observed =
        run_writeall(algo, config, recording_adv, recording);
    EXPECT_EQ(straight.run.tally, observed.run.tally)
        << "batched checkpoint capture perturbed the run";
    ASSERT_FALSE(checkpoints.empty());

    // ...and resume them in both modes.
    for (const bool resume_batched : {false, true}) {
      for (std::size_t i = 0; i < checkpoints.size();
           i += std::max<std::size_t>(checkpoints.size() / 4, 1)) {
        const EngineCheckpoint& cp = checkpoints[i];
        ChaosAdversary resumed_adv(seed, /*allow_torn=*/false);
        EngineOptions resume_opt = options;
        resume_opt.batch = resume_batched;
        const WriteAllOutcome resumed =
            run_writeall(algo, config, resumed_adv, resume_opt, &cp);
        EXPECT_EQ(straight.run.tally, resumed.run.tally)
            << "resume from slot " << cp.slot
            << (resume_batched ? " (batched)" : " (interpreter)")
            << " diverged";
        EXPECT_EQ(straight.solved, resumed.solved);
      }
    }
   }
  }
}

// --- The fallback gate ------------------------------------------------------

class NullAuditHook final : public EngineAuditHook {
 public:
  void on_run_begin(const Program&, const EngineOptions&) override {}
  void on_slot_begin(Slot) override {}
  void on_cycles_done(const SharedMemory&, Slot, std::span<const CycleTrace>,
                      std::span<const Pid>) override {}
  void on_transitions(Slot, const FaultDecision&) override {}
  void on_run_end() override {}
  void on_read(Pid, Addr) override {}
  void on_write(Pid, Addr, Word) override {}
  void on_snapshot(Pid) override {}
};

TEST(BatchFallback, PerOpHooksAndBudgetsForceInterpreter) {
  const WriteAllConfig config{.n = 64, .p = 16};
  const auto program = make_writeall(WriteAllAlgo::kX, config);

  {
    EngineOptions options;
    options.batch = true;
    Engine engine(*program, options);
    EXPECT_TRUE(engine.batch_active());
  }
  {
    EngineOptions options;
    options.batch = true;
    options.log_reads = true;  // per-op read visibility
    Engine engine(*program, options);
    EXPECT_FALSE(engine.batch_active());
  }
  {
    NullAuditHook hook;
    EngineOptions options;
    options.batch = true;
    options.audit = &hook;  // per-op audit visibility
    Engine engine(*program, options);
    EXPECT_FALSE(engine.batch_active());
  }
  {
    EngineOptions options;
    options.batch = true;
    options.read_budget = 3;  // tighter than the ported bodies assume
    Engine engine(*program, options);
    EXPECT_FALSE(engine.batch_active());
  }
  {
    EngineOptions options;
    options.batch = true;
    options.write_budget = 1;
    Engine engine(*program, options);
    EXPECT_FALSE(engine.batch_active());
  }
}

TEST(BatchFallback, UnportedProgramsRunUnchanged) {
  // kTrivial publishes no kernels: batch mode silently keeps the
  // interpreter and the run is unaffected.
  const WriteAllConfig config{.n = 64, .p = 16};
  NoFailures none;
  EngineOptions options;
  options.batch = true;
  const auto program = make_writeall(WriteAllAlgo::kTrivial, config);
  Engine engine(*program, options);
  EXPECT_FALSE(engine.batch_active());
  const RunResult result = engine.run(none);
  EXPECT_TRUE(result.goal_met);
}

TEST(BatchFallback, TaskSpecForcesInterpreter) {
  // A TaskSpec needs per-op CycleContext micro-cycles, so V/X/VX publish no
  // kernels when one is configured.
  class OneCycleTask final : public TaskSpec {
   public:
    unsigned cycles_per_task() const override { return 1; }
    void run(CycleContext& ctx, Addr task, unsigned,
             std::span<Word> scratch) const override {
      (void)ctx;
      (void)task;
      (void)scratch;
    }
  };
  OneCycleTask task;
  WriteAllConfig config{.n = 64, .p = 16};
  config.task = &task;
  config.stamp = 1;
  for (const WriteAllAlgo algo : {WriteAllAlgo::kV, WriteAllAlgo::kX,
                                  WriteAllAlgo::kCombinedVX}) {
    const auto program = make_writeall(algo, config);
    EngineOptions options;
    options.batch = true;
    Engine engine(*program, options);
    EXPECT_FALSE(engine.batch_active()) << to_string(algo);
  }
}

}  // namespace
}  // namespace rfsp
