// The [SS 83] action/recovery construct: completed actions are never
// re-entered after a restart; the in-progress action restarts from its
// beginning; the stable counter survives any failure pattern.
#include <gtest/gtest.h>

#include "fault/adversaries.hpp"
#include "pram/engine.hpp"
#include "pram/stable.hpp"
#include "test_util.hpp"
#include "util/error.hpp"

namespace rfsp {
namespace {

using testing::LambdaAdversary;

// A simple action: write `count` cells starting at `base` (one per cycle),
// values tagged by the action id so the test can see who wrote what.
class RegionWriter final : public ProcessorState {
 public:
  RegionWriter(Addr base, Addr count, Word tag)
      : base_(base), count_(count), tag_(tag) {}

  bool cycle(CycleContext& ctx) override {
    ctx.write(base_ + next_, tag_);
    ++next_;
    return next_ < count_;
  }

 private:
  Addr base_;
  Addr count_;
  Word tag_;
  Addr next_ = 0;
};

// A 3-action program over one processor: fill [8,12) with 1s, fill [12,16)
// with 2s, then set cell 7 = 99. pc cell at 0.
class PipelineProgram final : public Program {
 public:
  PipelineProgram()
      : seq_({[](Pid) { return std::make_unique<RegionWriter>(8, 4, 1); },
              [](Pid) { return std::make_unique<RegionWriter>(12, 4, 2); },
              [](Pid) { return std::make_unique<RegionWriter>(7, 1, 99); }},
             /*pc_base=*/0) {}

  std::string_view name() const override { return "pipeline"; }
  Pid processors() const override { return 1; }
  Addr memory_size() const override { return 16; }
  std::unique_ptr<ProcessorState> boot(Pid pid) const override {
    return seq_.boot(pid);
  }
  bool goal(const SharedMemory& mem) const override {
    return mem.read(7) == 99;
  }

  const ActionSequence& seq() const { return seq_; }

 private:
  ActionSequence seq_;
};

bool regions_correct(const SharedMemory& mem) {
  for (Addr a = 8; a < 12; ++a) {
    if (mem.read(a) != 1) return false;
  }
  for (Addr a = 12; a < 16; ++a) {
    if (mem.read(a) != 2) return false;
  }
  return mem.read(7) == 99;
}

TEST(ActionSequence, FaultFreePipeline) {
  const PipelineProgram program;
  NoFailures none;
  Engine engine(program);
  const RunResult result = engine.run(none);
  EXPECT_TRUE(result.goal_met);
  EXPECT_TRUE(regions_correct(engine.memory()));
  // Recovery read + (4 + checkpoint) + (4 + checkpoint) + 1: the engine's
  // goal fires before the final checkpoint cycle runs.
  EXPECT_EQ(result.tally.slots, 12u);
}

TEST(ActionSequence, RestartAtEverySlotStillCompletes) {
  // Single-processor pipeline with a second always-on helper (so the
  // liveness rule allows failing the pipeline processor at any slot).
  for (Slot kill_at = 0; kill_at < 13; ++kill_at) {
    class TwoProc final : public Program {
     public:
      TwoProc() : inner_() {}
      std::string_view name() const override { return "pipeline+helper"; }
      Pid processors() const override { return 2; }
      Addr memory_size() const override { return 16; }
      std::unique_ptr<ProcessorState> boot(Pid pid) const override {
        if (pid == 0) return inner_.boot(0);
        class Idle final : public ProcessorState {
          bool cycle(CycleContext&) override { return true; }
        };
        return std::make_unique<Idle>();
      }
      bool goal(const SharedMemory& mem) const override {
        return mem.read(7) == 99;
      }

     private:
      PipelineProgram inner_;
    };

    TwoProc program;
    LambdaAdversary adversary([&](const MachineView& view) {
      FaultDecision d;
      if (view.slot() == kill_at) {
        d.fail_mid_cycle.push_back(0);
        d.restart.push_back(0);
      }
      return d;
    });
    Engine engine(program);
    const RunResult result = engine.run(adversary);
    EXPECT_TRUE(result.goal_met) << "kill_at=" << kill_at;
    EXPECT_TRUE(regions_correct(engine.memory())) << "kill_at=" << kill_at;
  }
}

TEST(ActionSequence, CompletedActionsAreNeverReentered) {
  // Observe every committed write: once the stable counter reaches k, no
  // later write may target an earlier action's region.
  class TwoProc final : public Program {
   public:
    std::string_view name() const override { return "pipeline+helper"; }
    Pid processors() const override { return 2; }
    Addr memory_size() const override { return 16; }
    std::unique_ptr<ProcessorState> boot(Pid pid) const override {
      if (pid == 0) return inner_.boot(0);
      class Idle final : public ProcessorState {
        bool cycle(CycleContext&) override { return true; }
      };
      return std::make_unique<Idle>();
    }
    bool goal(const SharedMemory& mem) const override {
      return mem.read(7) == 99;
    }

   private:
    PipelineProgram inner_;
  };

  TwoProc program;
  bool violation = false;
  std::uint64_t kills = 0;
  LambdaAdversary adversary([&](const MachineView& view) {
    const Word pc = view.memory().read(0);
    const CycleTrace& trace = view.trace(0);
    if (trace.started) {
      for (const WriteOp& op : trace.writes) {
        // Writes into region A ([8,12)) after action 0 checkpointed, or
        // into B after action 1 checkpointed, would be re-entries.
        if (pc >= 1 && op.addr >= 8 && op.addr < 12) violation = true;
        if (pc >= 2 && op.addr >= 12 && op.addr < 16) violation = true;
      }
    }
    // Periodic kills to force recoveries mid-action.
    FaultDecision d;
    if (view.slot() % 4 == 2 && trace.started && kills < 8) {
      d.fail_mid_cycle.push_back(0);
      d.restart.push_back(0);
      ++kills;
    }
    return d;
  });
  Engine engine(program);
  const RunResult result = engine.run(adversary);
  EXPECT_TRUE(result.goal_met);
  EXPECT_FALSE(violation);
  EXPECT_EQ(kills, 8u);
  EXPECT_TRUE(regions_correct(engine.memory()));
}

TEST(ActionSequence, RestartAfterCompletionHaltsImmediately) {
  // Run the pipeline to completion (engine goal fires right after the last
  // action's write, before its checkpoint): the counter records the last
  // action as in-progress — a late restart re-runs only that idempotent
  // final action and halts.
  const PipelineProgram program;
  NoFailures none;
  Engine engine(program);
  const RunResult result = engine.run(none);
  ASSERT_TRUE(result.goal_met);
  EXPECT_EQ(engine.memory().read(0), 2);  // actions 0 and 1 checkpointed
}

TEST(ActionSequence, EmptySequenceRejected) {
  EXPECT_THROW(ActionSequence seq({}, 0), ConfigError);
}

}  // namespace
}  // namespace rfsp
