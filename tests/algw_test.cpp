// Algorithm W: efficient under fail-stop without restarts; breaks (fails to
// terminate) under restarts — the §4.1 motivation for algorithm V.
#include <gtest/gtest.h>

#include "fault/adversaries.hpp"
#include "fault/iteration_killer.hpp"
#include "pram/engine.hpp"
#include "test_util.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"
#include "writeall/algv.hpp"
#include "writeall/algw.hpp"
#include "writeall/runner.hpp"

namespace rfsp {
namespace {

using testing::LambdaAdversary;

TEST(WLayout, Geometry) {
  const WLayout layout(0, 1024, 1024, 100);
  EXPECT_EQ(layout.p_pad, 128u);
  EXPECT_EQ(layout.p_depth, 7u);
  EXPECT_EQ(layout.phase_count, 9u);  // 1 + 7 + 1
  EXPECT_EQ(layout.iteration,
            layout.phase_count + layout.progress.phase_alloc +
                layout.progress.phase_work + layout.progress.phase_update);
}

TEST(AlgW, RejectsEpochsAndTasks) {
  EXPECT_THROW(AlgW program({.n = 16, .p = 4, .stamp = 1}), ConfigError);
}

TEST(AlgW, FaultFreeWorkBound) {
  for (Addr n : {Addr{64}, Addr{1024}}) {
    for (Pid p : {Pid{1}, static_cast<Pid>(n / floor_log2(n)),
                  static_cast<Pid>(n)}) {
      if (p < 1 || p > n) continue;
      NoFailures none;
      const auto out = run_writeall(WriteAllAlgo::kW, {.n = n, .p = p}, none);
      ASSERT_TRUE(out.solved) << "n=" << n << " p=" << p;
      const double logn = floor_log2(n);
      EXPECT_LE(static_cast<double>(out.run.tally.completed_work),
                10.0 * (n + p * logn * logn) + 64);
    }
  }
}

TEST(AlgW, SurvivesCrashOnlyPatterns) {
  RandomAdversary adversary(8, {.fail_prob = 0.02, .restart_prob = 0.0});
  const auto out =
      run_writeall(WriteAllAlgo::kW, {.n = 512, .p = 512}, adversary);
  EXPECT_TRUE(out.solved);
  EXPECT_EQ(out.run.tally.restarts, 0u);
}

TEST(AlgW, RestartsPreventTermination) {
  // The §4.1 killer pattern: fail every worker that began the iteration
  // before it can record progress, restart it, repeat. No iteration's
  // phase-4 progress write ever commits, so W never terminates: the run
  // exhausts the slot budget with the array unfinished. (This is exactly
  // the §4.1 argument for why V replaces W's enumeration and why
  // Theorem 4.9 interleaves X for termination.)
  const Addr n = 64;
  const Pid p = 8;
  const AlgW program({.n = n, .p = p});
  // Kill right after the counting phase, before any leaf work of the
  // iteration can land.
  IterationKiller adversary(program.layout().iteration,
                            program.layout().phase_count);
  EngineOptions options;
  options.max_slots = 20000;
  Engine engine(program, options);
  const RunResult result = engine.run(adversary);
  EXPECT_FALSE(result.goal_met);
  EXPECT_TRUE(result.slot_limit);
  EXPECT_FALSE(program.solved(engine.memory()));
}

TEST(AlgV, RestartsPreventTerminationToo) {
  // Same pattern against V: the clock re-synchronization lets revived
  // processors rejoin, but none survives long enough to record progress.
  const Addr n = 64;
  const Pid p = 8;
  const AlgV program({.n = n, .p = p});
  IterationKiller adversary(program.layout().iteration);
  EngineOptions options;
  options.max_slots = 20000;
  Engine engine(program, options);
  const RunResult result = engine.run(adversary);
  EXPECT_FALSE(result.goal_met);
  EXPECT_TRUE(result.slot_limit);
}

TEST(AlgW, EnumerationShrinksWithDeaths) {
  // After permanently failing half the processors, W still solves (the next
  // iteration's enumeration simply counts fewer live processors).
  const Addr n = 256;
  const Pid p = 16;
  LambdaAdversary adversary([&](const MachineView& view) {
    FaultDecision d;
    if (view.slot() == 0) {
      for (Pid pid = p / 2; pid < p; ++pid) d.fail_after_cycle.push_back(pid);
    }
    return d;
  });
  const auto out = run_writeall(WriteAllAlgo::kW, {.n = n, .p = p}, adversary);
  EXPECT_TRUE(out.solved);
}

}  // namespace
}  // namespace rfsp
