// Record/replay (src/replay): JSONL round-trips, the determinism matrix
// ({W,V,X,VX} x {random,burst,halving,thrashing,chaos} reproduced bit for
// bit from a recorded schedule), violation-context enrichment, reproducer
// meta round-trips, and the regression corpus of minimized schedules.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "fault/adversaries.hpp"
#include "fault/halving.hpp"
#include "obs/trace.hpp"
#include "replay/repro.hpp"
#include "replay/schedule.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"
#include "writeall/runner.hpp"

namespace rfsp {
namespace {

using ::rfsp::testing::ChaosAdversary;
using ::rfsp::testing::LambdaAdversary;

FaultSchedule random_schedule(std::uint64_t seed) {
  Rng rng(seed);
  FaultSchedule s;
  s.meta["algo"] = "X";
  s.meta["n"] = std::to_string(rng.below(1000) + 1);
  s.meta["note"] = "line1\nline \"quoted\" \\ tab\t";
  Slot slot = rng.below(4);
  const std::size_t entries = rng.below(30);
  for (std::size_t i = 0; i < entries; ++i) {
    ScheduleEntry e;
    e.slot = slot;
    slot += 1 + rng.below(5);
    const auto fill = [&](std::vector<Pid>& v) {
      const std::size_t k = rng.below(4);
      for (std::size_t j = 0; j < k; ++j) {
        v.push_back(static_cast<Pid>(rng.below(64)));
      }
    };
    fill(e.decision.fail_mid_cycle);
    fill(e.decision.fail_after_cycle);
    fill(e.decision.restart);
    const std::size_t torn = rng.below(3);
    for (std::size_t j = 0; j < torn; ++j) {
      e.decision.torn.push_back({static_cast<Pid>(rng.below(64)),
                                 rng.below(4),
                                 static_cast<unsigned>(rng.below(64))});
    }
    if (!e.decision.empty()) s.entries.push_back(std::move(e));
  }
  return s;
}

TEST(ScheduleFormat, JsonlRoundTripProperty) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const FaultSchedule original = random_schedule(seed);
    const std::string text = schedule_to_jsonl(original);
    const FaultSchedule reparsed = schedule_from_jsonl(text);
    ASSERT_EQ(original, reparsed) << "seed=" << seed << "\n" << text;
    // Serialization is canonical: a second trip is byte-identical.
    EXPECT_EQ(text, schedule_to_jsonl(reparsed)) << "seed=" << seed;
  }
}

TEST(ScheduleFormat, RejectsMalformedInput) {
  EXPECT_THROW(schedule_from_jsonl(""), ConfigError);
  EXPECT_THROW(schedule_from_jsonl(R"({"format":"other","version":1})"),
               ConfigError);
  EXPECT_THROW(
      schedule_from_jsonl(
          R"({"format":"rfsp-fault-schedule","version":99,"meta":{}})"),
      ConfigError);
  // Out-of-order entries.
  EXPECT_THROW(
      schedule_from_jsonl(
          "{\"format\":\"rfsp-fault-schedule\",\"version\":1,\"meta\":{}}\n"
          "{\"t\":5,\"mid\":[1]}\n{\"t\":3,\"mid\":[2]}\n"),
      ConfigError);
  // Floats are not part of the format.
  EXPECT_THROW(
      schedule_from_jsonl(
          "{\"format\":\"rfsp-fault-schedule\",\"version\":1,\"meta\":{}}\n"
          "{\"t\":1.5,\"mid\":[1]}\n"),
      ConfigError);
}

TEST(ScheduleFormat, MetaSpecRoundTrip) {
  FaultSchedule s;
  ReproSpec spec{.algo = WriteAllAlgo::kCombinedVX, .n = 777, .p = 33,
                 .seed = 42, .max_slots = 12345, .bit_atomic_writes = true};
  write_meta(spec, s, ProbeStatus::kModelViolation, "a note");
  const ReproSpec back = spec_from_meta(s);
  EXPECT_EQ(back.algo, spec.algo);
  EXPECT_EQ(back.n, spec.n);
  EXPECT_EQ(back.p, spec.p);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.max_slots, spec.max_slots);
  EXPECT_EQ(back.bit_atomic_writes, spec.bit_atomic_writes);
  EXPECT_EQ(probe_status_from_string(s.meta.at("status")),
            ProbeStatus::kModelViolation);
  EXPECT_EQ(s.meta.at("note"), "a note");

  FaultSchedule incomplete;
  incomplete.meta["algo"] = "X";
  EXPECT_THROW(spec_from_meta(incomplete), ConfigError);
  incomplete.meta["n"] = "not-a-number";
  incomplete.meta["p"] = "4";
  EXPECT_THROW(spec_from_meta(incomplete), ConfigError);
}

// --- The determinism matrix -------------------------------------------------

struct RunCapture {
  WorkTally tally;
  bool solved = false;
  std::string events;  // JSONL trace-event stream
};

RunCapture run_captured(WriteAllAlgo algo, const WriteAllConfig& config,
                        Adversary& adversary, Slot max_slots) {
  std::ostringstream os;
  JsonlTraceSink sink(os);
  EngineOptions options;
  options.max_slots = max_slots;
  options.sink = &sink;
  const WriteAllOutcome out = run_writeall(algo, config, adversary, options);
  return {out.run.tally, out.solved, os.str()};
}

std::unique_ptr<Adversary> make_named(const std::string& name,
                                      std::uint64_t seed, Addr n) {
  if (name == "random") {
    return std::make_unique<RandomAdversary>(
        seed, RandomAdversaryOptions{.fail_prob = 0.2, .restart_prob = 0.5});
  }
  if (name == "burst") {
    return std::make_unique<BurstAdversary>(
        BurstAdversaryOptions{.period = 3, .count = 5});
  }
  if (name == "halving") return std::make_unique<HalvingAdversary>(0, n);
  if (name == "thrashing") return std::make_unique<ThrashingAdversary>();
  return std::make_unique<ChaosAdversary>(seed, /*allow_torn=*/false);
}

TEST(ReplayDeterminism, MatrixReproducesTallyAndTrace) {
  const WriteAllConfig config{.n = 64, .p = 16, .seed = 9};
  // Restart-heavy adversaries can legitimately starve W forever; the bound
  // makes those runs finite, and determinism must hold for the truncated
  // run too (identical unsolved outcome, identical trace).
  const Slot max_slots = 5000;
  for (WriteAllAlgo algo : {WriteAllAlgo::kW, WriteAllAlgo::kV,
                            WriteAllAlgo::kX, WriteAllAlgo::kCombinedVX}) {
    for (const std::string adversary_name :
         {"random", "burst", "halving", "thrashing", "chaos"}) {
      SCOPED_TRACE(std::string(to_string(algo)) + " x " + adversary_name);

      const auto inner = make_named(adversary_name, 9, config.n);
      FaultSchedule schedule;
      RecordingAdversary recorder(*inner, schedule);
      const RunCapture original =
          run_captured(algo, config, recorder, max_slots);

      // The schedule round-trips through its serialized form before the
      // replay, so the test covers the on-disk format, not just the
      // in-memory struct.
      const FaultSchedule reloaded =
          schedule_from_jsonl(schedule_to_jsonl(schedule));
      ReplayAdversary replay(reloaded);
      const RunCapture replayed =
          run_captured(algo, config, replay, max_slots);

      EXPECT_EQ(original.tally, replayed.tally);
      EXPECT_EQ(original.solved, replayed.solved);
      EXPECT_EQ(original.events, replayed.events);
    }
  }
}

TEST(ReplayDeterminism, SnapshotAndAccAlgorithms) {
  for (WriteAllAlgo algo : {WriteAllAlgo::kSnapshot, WriteAllAlgo::kAcc}) {
    const WriteAllConfig config{.n = 64, .p = 16, .seed = 4};
    const auto inner = make_named("chaos", 21, config.n);
    FaultSchedule schedule;
    RecordingAdversary recorder(*inner, schedule);
    const RunCapture original = run_captured(algo, config, recorder, 20000);

    ReplayAdversary replay(schedule);
    const RunCapture replayed = run_captured(algo, config, replay, 20000);
    EXPECT_EQ(original.tally, replayed.tally);
    EXPECT_EQ(original.events, replayed.events);
  }
}

// --- Violations: recording and context enrichment ---------------------------

TEST(ViolationContext, RecordedScheduleKeepsTheOffendingDecision) {
  // Restarting a live processor is illegal; the recorder must capture the
  // bad decision even though the engine rejects it.
  LambdaAdversary inner([](const MachineView& view) {
    FaultDecision d;
    if (view.slot() == 3) d.restart.push_back(0);
    return d;
  });
  FaultSchedule schedule;
  RecordingAdversary recorder(inner, schedule);
  try {
    run_writeall(WriteAllAlgo::kX, {.n = 32, .p = 4}, recorder);
    FAIL() << "expected AdversaryViolation";
  } catch (const AdversaryViolation& av) {
    EXPECT_EQ(av.context.slot, 3);
    EXPECT_EQ(av.context.pid, 0);
    EXPECT_EQ(av.context.move, "restart");
    EXPECT_NE(std::string(av.what()).find("slot 3"), std::string::npos);
  }
  ASSERT_FALSE(schedule.entries.empty());
  EXPECT_EQ(schedule.entries.back().slot, 3u);
  EXPECT_EQ(schedule.entries.back().decision.restart, std::vector<Pid>{0});
}

TEST(ViolationContext, ProbeClassifiesViolations) {
  FaultSchedule bad;
  ReproSpec spec{.algo = WriteAllAlgo::kX, .n = 32, .p = 4};
  write_meta(spec, bad, ProbeStatus::kAdversaryViolation, "");
  ScheduleEntry e;
  e.slot = 2;
  e.decision.restart.push_back(1);  // pid 1 is live -> illegal restart
  bad.entries.push_back(e);

  const ProbeResult r = probe(spec_from_meta(bad), bad);
  EXPECT_EQ(r.status, ProbeStatus::kAdversaryViolation);
  EXPECT_EQ(r.context.slot, 2);
  EXPECT_EQ(r.context.pid, 1);
  EXPECT_EQ(r.context.move, "restart");
  EXPECT_FALSE(r.message.empty());
}

TEST(ViolationContext, ProbeSolvesBenignSchedules) {
  FaultSchedule benign;
  ReproSpec spec{.algo = WriteAllAlgo::kX, .n = 32, .p = 4};
  write_meta(spec, benign, ProbeStatus::kSolved, "");
  ScheduleEntry e;
  e.slot = 1;
  e.decision.fail_after_cycle.push_back(2);
  benign.entries.push_back(e);

  const ProbeResult r = probe(spec_from_meta(benign), benign);
  EXPECT_EQ(r.status, ProbeStatus::kSolved);
  EXPECT_GT(r.tally.completed_work, 0u);
  EXPECT_EQ(r.tally.failures, 1u);
}

// --- Regression corpus ------------------------------------------------------

// Every archived reproducer under tests/corpus/ must still replay to the
// status its meta promises. New entries come from chaos_test auto-records
// (shrunk via writeall_cli --shrink-out) — vet, then check in.
TEST(Corpus, ArchivedReproducersReplayToTheirRecordedStatus) {
  const std::filesystem::path dir = RFSP_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::size_t replayed = 0;
  for (const auto& file : std::filesystem::directory_iterator(dir)) {
    if (file.path().extension() != ".jsonl") continue;
    SCOPED_TRACE(file.path().filename().string());
    const FaultSchedule schedule = load_schedule(file.path().string());
    const ProbeStatus expected =
        probe_status_from_string(schedule.meta.at("status"));
    const ProbeResult r = probe(spec_from_meta(schedule), schedule);
    EXPECT_EQ(r.status, expected)
        << "message: " << r.message
        << " (expected " << to_string(expected) << ")";
    ++replayed;
  }
  EXPECT_GE(replayed, 3u) << "the seeded corpus went missing";
}

}  // namespace
}  // namespace rfsp
