// Checkpoint/restore (EngineCheckpoint, docs/resilience.md §3): JSON
// round-trips, the checkpoint-at-every-slot == straight-run determinism
// matrix, resume-composability with the simulator, and the error paths
// (shape mismatches, unserializable programs, restore-after-run).
#include <gtest/gtest.h>

#include "fault/adversaries.hpp"
#include "fault/halving.hpp"
#include "programs/programs.hpp"
#include "replay/checkpoint.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"
#include "writeall/runner.hpp"

namespace rfsp {
namespace {

using ::rfsp::testing::ChaosAdversary;
using ::rfsp::testing::LambdaProgram;

TEST(CheckpointFormat, JsonRoundTripIsExact) {
  EngineCheckpoint cp;
  cp.slot = 640;
  cp.tally = {.completed_work = 10, .attempted_work = 12, .failures = 3,
              .restarts = 2, .slots = 7, .halted = 1, .peak_live = 4};
  cp.memory = {0, -5, INT64_MAX, INT64_MIN, 42};
  cp.status = {ProcStatus::kLive, ProcStatus::kFailed, ProcStatus::kHalted};
  cp.states.emplace_back(std::vector<Word>{1, -2, 3});
  cp.states.emplace_back(std::nullopt);
  cp.states.emplace_back(std::vector<Word>{});
  cp.adversary = {UINT64_MAX, 0, 7};

  const std::string text = checkpoint_to_json(cp);
  const EngineCheckpoint back = checkpoint_from_json(text);
  EXPECT_EQ(cp, back);
  EXPECT_EQ(text, checkpoint_to_json(back));  // canonical
}

// Saver-attached meta (the CLIs record "tree_order" so a layout-private
// memory image cannot be silently resumed under the wrong storage order):
// round-trips exactly, and an empty map serializes to no "meta" key at all,
// keeping meta-free documents byte-identical to the pre-meta format.
TEST(CheckpointFormat, MetaRoundTripAndAbsentWhenEmpty) {
  EngineCheckpoint cp;
  cp.slot = 3;
  cp.memory = {1};
  EXPECT_EQ(checkpoint_to_json(cp).find("\"meta\""), std::string::npos);

  cp.meta = {{"tree_order", "veb"}, {"note", "a \"quoted\" value"}};
  const std::string text = checkpoint_to_json(cp);
  const EngineCheckpoint back = checkpoint_from_json(text);
  EXPECT_EQ(cp, back);
  EXPECT_EQ(text, checkpoint_to_json(back));  // canonical

  // A pre-meta document (no "meta" key) parses to an empty map.
  EngineCheckpoint bare = cp;
  bare.meta.clear();
  EXPECT_TRUE(checkpoint_from_json(checkpoint_to_json(bare)).meta.empty());
}

TEST(CheckpointFormat, RejectsMalformedInput) {
  EXPECT_THROW(checkpoint_from_json("{}"), ConfigError);
  EXPECT_THROW(checkpoint_from_json(R"({"format":"other","version":1})"),
               ConfigError);
  EXPECT_THROW(
      checkpoint_from_json(
          R"({"format":"rfsp-checkpoint","version":2,"slot":0})"),
      ConfigError);
}

// --- Determinism: resume == never stopped -----------------------------------

std::unique_ptr<Adversary> make_named(const std::string& name,
                                      std::uint64_t seed, Addr n) {
  if (name == "halving") return std::make_unique<HalvingAdversary>(0, n);
  if (name == "thrashing") return std::make_unique<ThrashingAdversary>();
  return std::make_unique<ChaosAdversary>(seed, /*allow_torn=*/false);
}

// Run with a checkpoint at every slot, then resume from a sample of those
// checkpoints: every continuation must land on the straight run's exact
// tally and outcome. Checkpointing itself must not perturb the run either.
void check_resume_matrix(WriteAllAlgo algo, const std::string& adversary_name,
                         Slot max_slots, Pid p = 12) {
  SCOPED_TRACE(std::string(to_string(algo)) + " x " + adversary_name);
  const WriteAllConfig config{.n = 48, .p = p, .seed = 5};
  const std::uint64_t seed = 77;
  EngineOptions options;
  options.max_slots = max_slots;

  const auto straight_adversary = make_named(adversary_name, seed, config.n);
  const WriteAllOutcome straight =
      run_writeall(algo, config, *straight_adversary, options);

  std::vector<EngineCheckpoint> checkpoints;
  EngineOptions recording = options;
  recording.checkpoint_every = 1;
  recording.on_checkpoint = [&](const EngineCheckpoint& cp) {
    checkpoints.push_back(cp);
  };
  const auto observed_adversary = make_named(adversary_name, seed, config.n);
  const WriteAllOutcome observed =
      run_writeall(algo, config, *observed_adversary, recording);
  EXPECT_EQ(straight.run.tally, observed.run.tally)
      << "checkpoint capture perturbed the run";
  EXPECT_EQ(straight.solved, observed.solved);
  ASSERT_FALSE(checkpoints.empty());

  for (std::size_t i = 0; i < checkpoints.size();
       i += std::max<std::size_t>(checkpoints.size() / 6, 1)) {
    const EngineCheckpoint& cp = checkpoints[i];
    const auto resumed_adversary = make_named(adversary_name, seed, config.n);
    const WriteAllOutcome resumed =
        run_writeall(algo, config, *resumed_adversary, options, &cp);
    EXPECT_EQ(straight.run.tally, resumed.run.tally)
        << "resume from slot " << cp.slot << " diverged";
    EXPECT_EQ(straight.solved, resumed.solved);
  }
}

TEST(CheckpointResume, CoreAlgorithmsUnderHalving) {
  for (WriteAllAlgo algo : {WriteAllAlgo::kW, WriteAllAlgo::kV,
                            WriteAllAlgo::kX, WriteAllAlgo::kCombinedVX}) {
    check_resume_matrix(algo, "halving", 2000);
  }
}

TEST(CheckpointResume, CoreAlgorithmsUnderThrashing) {
  for (WriteAllAlgo algo : {WriteAllAlgo::kW, WriteAllAlgo::kV,
                            WriteAllAlgo::kX, WriteAllAlgo::kCombinedVX}) {
    check_resume_matrix(algo, "thrashing", 1500);
  }
}

TEST(CheckpointResume, CoreAlgorithmsUnderChaos) {
  for (WriteAllAlgo algo : {WriteAllAlgo::kW, WriteAllAlgo::kV,
                            WriteAllAlgo::kX, WriteAllAlgo::kCombinedVX}) {
    check_resume_matrix(algo, "chaos", 2000);
  }
}

TEST(CheckpointResume, RemainingAlgorithms) {
  // ACC (randomized: the per-processor RNG must survive the round-trip),
  // the snapshot algorithm, and the non-fault-tolerant baselines.
  for (WriteAllAlgo algo :
       {WriteAllAlgo::kAcc, WriteAllAlgo::kSnapshot, WriteAllAlgo::kTrivial}) {
    check_resume_matrix(algo, "chaos", 2000);
  }
  // The sequential baseline insists on exactly one processor.
  check_resume_matrix(WriteAllAlgo::kSequential, "chaos", 2000, /*p=*/1);
}

TEST(CheckpointResume, SimulatorKillAndResume) {
  PrefixSumProgram program({5, 3, 8, 1, 9, 2, 7, 4, 6, 10, 11, 12});

  ChaosAdversary straight_adversary(33, /*allow_torn=*/false);
  const SimResult straight = simulate(program, straight_adversary,
                                      {.physical_processors = 5});
  ASSERT_TRUE(straight.completed);

  std::vector<EngineCheckpoint> checkpoints;
  SimOptions capture{.physical_processors = 5};
  capture.checkpoint_every = 8;
  capture.on_checkpoint = [&](const EngineCheckpoint& cp) {
    checkpoints.push_back(cp);
  };
  ChaosAdversary observed_adversary(33, /*allow_torn=*/false);
  const SimResult observed = simulate(program, observed_adversary, capture);
  EXPECT_EQ(straight.tally, observed.tally);
  ASSERT_GE(checkpoints.size(), 2u);

  for (const auto& cp :
       {checkpoints.front(), checkpoints[checkpoints.size() / 2],
        checkpoints.back()}) {
    SimOptions resume{.physical_processors = 5};
    resume.resume = &cp;
    ChaosAdversary resumed_adversary(33, /*allow_torn=*/false);
    const SimResult resumed = simulate(program, resumed_adversary, resume);
    EXPECT_TRUE(resumed.completed);
    EXPECT_EQ(straight.tally, resumed.tally)
        << "resume from slot " << cp.slot << " diverged";
    EXPECT_EQ(straight.memory, resumed.memory);
  }
}

// --- Error paths ------------------------------------------------------------

TEST(CheckpointErrors, ShapeMismatchIsRejected) {
  NoFailures quiet;
  EngineOptions capture;
  capture.checkpoint_every = 4;
  EngineCheckpoint cp;
  bool have = false;
  capture.on_checkpoint = [&](const EngineCheckpoint& c) {
    if (!have) { cp = c; have = true; }
  };
  ThrashingAdversary thrash;
  run_writeall(WriteAllAlgo::kX, {.n = 32, .p = 8}, thrash, capture);
  ASSERT_TRUE(have);

  // Same algorithm, different machine shape.
  NoFailures fresh;
  EXPECT_THROW(
      run_writeall(WriteAllAlgo::kX, {.n = 64, .p = 8}, fresh, {}, &cp),
      ConfigError);
  NoFailures fresh2;
  EXPECT_THROW(
      run_writeall(WriteAllAlgo::kX, {.n = 32, .p = 16}, fresh2, {}, &cp),
      ConfigError);
}

TEST(CheckpointErrors, ProgramWithoutSaveStateIsRejected) {
  // LambdaProgram's processor state has no save_state: the first capture
  // must fail loudly instead of writing a checkpoint that cannot resume.
  LambdaProgram program(2, 4, [](Pid, std::uint64_t, CycleContext& ctx) {
    ctx.write(0, 1);
    return true;
  });
  EngineOptions options;
  options.max_slots = 16;
  options.checkpoint_every = 2;
  options.on_checkpoint = [](const EngineCheckpoint&) {};
  Engine engine(program, options);
  NoFailures quiet;
  EXPECT_THROW(engine.run(quiet), ConfigError);
}

TEST(CheckpointErrors, RestoreAfterRunIsRejected) {
  LambdaProgram program(2, 4, [](Pid, std::uint64_t, CycleContext& ctx) {
    ctx.write(0, 1);
    return false;
  });
  Engine engine(program, {});
  NoFailures quiet;
  engine.run(quiet);
  EngineCheckpoint cp;
  cp.memory.resize(4);
  cp.status.resize(2, ProcStatus::kLive);
  cp.states.resize(2);
  EXPECT_THROW(engine.restore(cp), ConfigError);
}

}  // namespace
}  // namespace rfsp
