// Theorem 3.1: the halving adversary forces Ω(N log N) completed work on
// ANY Write-All algorithm with P = N — including the snapshot algorithm
// operating under the strong unit-cost-read assumption.
#include <gtest/gtest.h>

#include "fault/adversaries.hpp"
#include "fault/halving.hpp"
#include "util/bits.hpp"
#include "writeall/runner.hpp"

namespace rfsp {
namespace {

double forced_work(WriteAllAlgo algo, Addr n) {
  const WriteAllConfig config{.n = n, .p = static_cast<Pid>(n), .seed = 1};
  HalvingAdversary adversary(0, n);
  const auto out = run_writeall(algo, config, adversary);
  EXPECT_TRUE(out.solved) << to_string(algo) << " n=" << n;
  return static_cast<double>(out.run.tally.completed_work);
}

TEST(LowerBound, HalvingForcesNLogNOnEveryAlgorithm) {
  // The proof guarantees ≥ ⌊N/2⌋ completed cycles for ≥ ~log₂N rounds.
  // Assert a half-strength version (engineering slack for the guard that
  // keeps constraint 2(i) when a processor writes into both halves).
  for (Addr n : {Addr{64}, Addr{256}, Addr{1024}}) {
    const double floor_bound = 0.25 * static_cast<double>(n) * floor_log2(n);
    for (WriteAllAlgo algo :
         {WriteAllAlgo::kV, WriteAllAlgo::kX, WriteAllAlgo::kCombinedVX,
          WriteAllAlgo::kAcc, WriteAllAlgo::kSnapshot}) {
      EXPECT_GE(forced_work(algo, n), floor_bound)
          << to_string(algo) << " n=" << n;
    }
  }
}

TEST(LowerBound, HalvingRunsTheExpectedNumberOfRounds) {
  const Addr n = 1024;
  HalvingAdversary adversary(0, n);
  const WriteAllConfig config{.n = n, .p = static_cast<Pid>(n)};
  const auto out = run_writeall(WriteAllAlgo::kSnapshot, config, adversary);
  ASSERT_TRUE(out.solved);
  // Halving U from N to 1 takes ≥ log₂N effective rounds.
  EXPECT_GE(adversary.rounds(), floor_log2(n));
}

TEST(LowerBound, BoundBindsOnlyCorrectAlgorithms) {
  // The trivial assignment slips under N log N against the halving
  // adversary (its processors halt after one write, so only ~U casualties
  // retry each round and S = Θ(N)) — but it is NOT a correct Write-All
  // algorithm: an adversary that kills one processor forever starves that
  // processor's cells. Theorem 3.1 quantifies over correct algorithms, so
  // this is the expected, instructive escape, not a counterexample.
  const Addr n = 256;
  const double s = forced_work(WriteAllAlgo::kTrivial, n);
  EXPECT_LE(s, 6.0 * static_cast<double>(n));  // far below N log N

  // ... and the incorrectness half: one permanent crash starves a cell.
  FaultPattern one_death;
  one_death.add(FaultTag::kFailure, 3, 0);
  ScheduledAdversary crash(one_death);
  EngineOptions options;
  options.max_slots = 4096;
  const auto out = run_writeall(WriteAllAlgo::kTrivial,
                                {.n = n, .p = static_cast<Pid>(n)}, crash);
  EXPECT_FALSE(out.solved);
}

}  // namespace
}  // namespace rfsp
