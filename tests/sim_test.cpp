// The Theorem 4.1 executor: simulated programs must produce exactly the
// reference synchronous-PRAM result under every adversary, for every inner
// Write-All algorithm, with fewer physical than simulated processors.
#include <gtest/gtest.h>

#include <algorithm>

#include "fault/adversaries.hpp"
#include "fault/stalkers.hpp"
#include "programs/chain.hpp"
#include "programs/programs.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rfsp {
namespace {

std::vector<Word> random_values(std::size_t n, std::uint64_t seed,
                                Word bound) {
  Rng rng(seed);
  std::vector<Word> v(n);
  for (auto& w : v) w = static_cast<Word>(rng.below(bound));
  return v;
}

TEST(SimLayout, RegionsAreDisjointAndOrdered) {
  PrefixSumProgram program(random_values(40, 1, 1000));
  const SimLayout layout(program, 8);
  EXPECT_EQ(layout.data, 0u);
  EXPECT_EQ(layout.regs, layout.data_cells);
  EXPECT_GE(layout.scratch, layout.regs);  // equal when registers() == 0
  EXPECT_GT(layout.phase, layout.scratch);
  EXPECT_GT(layout.total, layout.phase);
  EXPECT_EQ(layout.wa_compute.aux_end(), layout.wa_commit.aux_end());
  EXPECT_GT(layout.compute_cycles, layout.commit_cycles);
}

TEST(SimLayout, RejectsBadProcessorCounts) {
  PrefixSumProgram program(random_values(8, 1, 10));
  EXPECT_THROW(SimLayout(program, 9), ConfigError);  // P > N
}

TEST(PhaseWord, PackUnpack) {
  const Word w = phase_encode(77, 123456789);
  EXPECT_EQ(phase_pass(w), 77u);
  EXPECT_EQ(phase_start(w), 123456789u);
  EXPECT_EQ(phase_pass(0), 0u);
  EXPECT_EQ(phase_start(0), 0u);
}

TEST(ReferenceRun, MatchesClosedForms) {
  {
    PrefixSumProgram program({1, 2, 3, 4, 5});
    EXPECT_TRUE(program.verify(reference_run(program)));
  }
  {
    MaxReduceProgram program({5, 17, 3, 42, 9, 41});
    EXPECT_TRUE(program.verify(reference_run(program)));
  }
  {
    OddEvenSortProgram program({9, 1, 8, 2, 7, 3, 6});
    EXPECT_TRUE(program.verify(reference_run(program)));
  }
  {
    ListRankingProgram program({1, 2, 3, 3});  // chain 0→1→2→3, tail 3
    EXPECT_TRUE(program.verify(reference_run(program)));
  }
  {
    MatMulProgram program({1, 2, 3, 4}, {5, 6, 7, 8}, 2);
    EXPECT_TRUE(program.verify(reference_run(program)));
  }
}

TEST(Simulate, FaultFreeMatchesReference) {
  PrefixSumProgram program(random_values(64, 2, 100));
  NoFailures none;
  const SimResult result = simulate(program, none);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.memory, reference_run(program));
  EXPECT_TRUE(program.verify(result.memory));
  EXPECT_EQ(result.passes, 2 * program.steps());
}

TEST(Simulate, FewerPhysicalProcessors) {
  PrefixSumProgram program(random_values(64, 3, 100));
  for (Pid p : {Pid{1}, Pid{5}, Pid{16}, Pid{64}}) {
    NoFailures none;
    const SimResult result =
        simulate(program, none, {.physical_processors = p});
    ASSERT_TRUE(result.completed) << "p=" << p;
    EXPECT_TRUE(program.verify(result.memory)) << "p=" << p;
  }
}

struct SimCase {
  const char* label;
  SimInner inner;
};

class SimInnerSuite : public ::testing::TestWithParam<SimCase> {};

TEST_P(SimInnerSuite, AllProgramsUnderRandomRestarts) {
  const SimCase c = GetParam();
  RandomAdversaryOptions opt;
  opt.fail_prob = 0.08;
  opt.restart_prob = 0.5;

  {
    PrefixSumProgram program(random_values(48, 4, 100));
    RandomAdversary adversary(71, opt);
    const SimResult r =
        simulate(program, adversary, {.physical_processors = 16, .inner = c.inner});
    ASSERT_TRUE(r.completed) << c.label;
    EXPECT_TRUE(program.verify(r.memory)) << c.label;
    EXPECT_GT(r.tally.pattern_size(), 0u);
  }
  {
    MaxReduceProgram program(random_values(37, 5, 1000));
    RandomAdversary adversary(72, opt);
    const SimResult r =
        simulate(program, adversary, {.physical_processors = 9, .inner = c.inner});
    ASSERT_TRUE(r.completed) << c.label;
    EXPECT_TRUE(program.verify(r.memory)) << c.label;
  }
  {
    OddEvenSortProgram program(random_values(24, 6, 50));
    RandomAdversary adversary(73, opt);
    const SimResult r =
        simulate(program, adversary, {.physical_processors = 24, .inner = c.inner});
    ASSERT_TRUE(r.completed) << c.label;
    EXPECT_TRUE(program.verify(r.memory)) << c.label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Inners, SimInnerSuite,
    ::testing::Values(SimCase{"VX", SimInner::kCombinedVX},
                      SimCase{"X", SimInner::kX},
                      SimCase{"V", SimInner::kV}),
    [](const ::testing::TestParamInfo<SimCase>& info) {
      return std::string(info.param.label);
    });

TEST(Simulate, ListRankingUnderRandomRestarts) {
  // A longer dependency chain: ranks double-propagate through memory each
  // step, so any stale or lost write would corrupt the result.
  std::vector<Pid> next(33);
  for (Pid j = 0; j + 1 < next.size(); ++j) next[j] = j + 1;
  next.back() = static_cast<Pid>(next.size() - 1);
  ListRankingProgram program(next);
  RandomAdversary adversary(74, {.fail_prob = 0.1, .restart_prob = 0.6});
  const SimResult r = simulate(program, adversary, {.physical_processors = 11});
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(program.verify(r.memory));
  EXPECT_EQ(r.memory, reference_run(program));
}

TEST(Simulate, MatMulWithRegistersUnderRandomRestarts) {
  // Registers live in simulated memory: losing a physical processor must
  // never lose a simulated accumulator.
  MatMulProgram program(random_values(36, 7, 10), random_values(36, 8, 10),
                        6);
  RandomAdversary adversary(75, {.fail_prob = 0.12, .restart_prob = 0.5});
  const SimResult r = simulate(program, adversary, {.physical_processors = 12});
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(program.verify(r.memory));
}

TEST(Simulate, DeterministicGivenSeedAndPattern) {
  PrefixSumProgram program(random_values(32, 9, 100));
  RandomAdversaryOptions opt;
  opt.fail_prob = 0.15;
  opt.restart_prob = 0.5;
  RandomAdversary a1(55, opt), a2(55, opt);
  const SimResult r1 = simulate(program, a1, {.physical_processors = 8});
  const SimResult r2 = simulate(program, a2, {.physical_processors = 8});
  EXPECT_EQ(r1.tally.completed_work, r2.tally.completed_work);
  EXPECT_EQ(r1.memory, r2.memory);
}

TEST(Simulate, BurstStormEveryFewSlots) {
  OddEvenSortProgram program(random_values(16, 10, 30));
  BurstAdversary adversary({.period = 3, .count = 5});
  const SimResult r = simulate(program, adversary, {.physical_processors = 16});
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(program.verify(r.memory));
  EXPECT_GT(r.tally.failures, 0u);
}

TEST(Simulate, SingleSimulatedProcessor) {
  // Degenerate N = 1: one task per pass, one physical processor.
  PrefixSumProgram program({41});
  NoFailures none;
  const SimResult r = simulate(program, none, {.physical_processors = 1});
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.memory[0], 41);
}

TEST(Simulate, BitonicSortUnderRestartStorm) {
  BitonicSortProgram program(random_values(32, 13, 500));
  ASSERT_EQ(program.steps(), 15u);  // log²-ish schedule: Σ k for k=1..5
  RandomAdversary adversary(82, {.fail_prob = 0.1, .restart_prob = 0.5});
  const SimResult r =
      simulate(program, adversary, {.physical_processors = 8});
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(program.verify(r.memory));
  EXPECT_EQ(r.memory, reference_run(program));
}

TEST(ReferenceRun, BitonicMatchesStdSort) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    BitonicSortProgram program(random_values(64, seed, 10000));
    EXPECT_TRUE(program.verify(reference_run(program))) << seed;
  }
}

TEST(Simulate, StencilUnderRestartStorm) {
  std::vector<Word> rod(40, 0);
  rod[0] = 1000;               // hot left boundary
  rod[rod.size() - 1] = 200;   // warm right boundary
  StencilProgram program(rod, /*rounds=*/25);
  RandomAdversary adversary(81, {.fail_prob = 0.1, .restart_prob = 0.5});
  const SimResult r = simulate(program, adversary, {.physical_processors = 10});
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(program.verify(r.memory));
  EXPECT_EQ(r.memory, reference_run(program));
}

TEST(Simulate, UnderThePostOrderStalker) {
  // The Theorem 4.8 adversary aimed at the simulator's embedded X half:
  // expensive, but the simulation still completes correctly.
  PrefixSumProgram program(random_values(32, 12, 50));
  const SimLayout layout(program, 32);
  PostOrderStalker stalker(layout.wa_compute.x, /*stamp=*/0);
  // The stalker reads stamped w[] cells; epoch stamps rotate per pass, so
  // give it stamp 0 — payload_of() then sees positions only during pass 0.
  // That still exercises hostile interference; correctness must hold.
  const SimResult r = simulate(program, stalker, {.physical_processors = 32});
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(program.verify(r.memory));
}

TEST(ReferenceRun, DetectsSimulatedCommonViolations) {
  // A program whose step writes different values to one cell must be
  // rejected by the reference executor (and would trip the engine's COMMON
  // check under simulation).
  class Conflicting final : public SimProgram {
   public:
    std::string_view name() const override { return "conflicting"; }
    Pid processors() const override { return 2; }
    Addr memory_cells() const override { return 2; }
    Step steps() const override { return 1; }
    void step(StepContext& ctx, Pid j, Step) const override {
      ctx.store(0, static_cast<Word>(j + 1));  // 1 vs 2 into cell 0
    }
    unsigned registers() const override { return 0; }
  };
  const Conflicting program;
  EXPECT_THROW((void)reference_run(program), std::logic_error);
}

TEST(Simulate, ChainedSortThenScanUnderFaults) {
  // Sort random keys, then compute prefix sums of the sorted array — a
  // two-phase application run end-to-end on the faulty machine.
  const std::vector<Word> keys = random_values(32, 14, 100);
  OddEvenSortProgram sorter(keys);
  PrefixSumProgram scanner(keys);  // same size; structure-only reuse
  ChainedProgram chain(sorter, scanner);
  ASSERT_EQ(chain.steps(), sorter.steps() + scanner.steps());

  RandomAdversary adversary(83, {.fail_prob = 0.1, .restart_prob = 0.5});
  const SimResult r = simulate(chain, adversary, {.physical_processors = 8});
  ASSERT_TRUE(r.completed);

  // Expected: prefix sums over the sorted keys.
  std::vector<Word> expected = keys;
  std::sort(expected.begin(), expected.end());
  Word acc = 0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    acc = sim_word(acc + expected[i]);
    EXPECT_EQ(r.memory[i], acc) << "i=" << i;
  }
  EXPECT_EQ(r.memory, reference_run(chain));
}

TEST(Simulate, ChainValidation) {
  PrefixSumProgram small(random_values(8, 1, 10));
  PrefixSumProgram large(random_values(16, 1, 10));
  EXPECT_THROW(ChainedProgram chain(small, large), ConfigError);
}

TEST(Simulate, LoadBudgetViolationIsReported) {
  // A program that under-declares its load budget must be rejected loudly,
  // not silently miscomputed.
  class Greedy final : public SimProgram {
   public:
    std::string_view name() const override { return "greedy"; }
    Pid processors() const override { return 2; }
    Addr memory_cells() const override { return 8; }
    Step steps() const override { return 1; }
    void step(StepContext& ctx, Pid, Step) const override {
      Word sum = 0;
      for (Addr a = 0; a < 8; ++a) sum += ctx.load(a);  // 8 loads
      ctx.store(0, sum);
    }
    unsigned max_loads() const override { return 2; }  // lies
    unsigned max_stores() const override { return 1; }
    unsigned registers() const override { return 0; }
  };
  Greedy program;
  NoFailures none;
  EXPECT_THROW(simulate(program, none), ConfigError);
}

}  // namespace
}  // namespace rfsp
