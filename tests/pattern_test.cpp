#include <gtest/gtest.h>

#include <sstream>

#include "fault/pattern.hpp"

namespace rfsp {
namespace {

TEST(FaultPattern, SizeAndCounts) {
  FaultPattern p;
  p.add(FaultTag::kFailure, 3, 0);
  p.add(FaultTag::kRestart, 3, 2);
  p.add(FaultTag::kFailure, 1, 2);
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p.failures(), 2u);
  EXPECT_EQ(p.restarts(), 1u);
}

TEST(FaultPattern, RequiresTimeOrder) {
  FaultPattern p;
  p.add(FaultTag::kFailure, 0, 5);
  EXPECT_THROW(p.add(FaultTag::kFailure, 1, 4), std::logic_error);
}

TEST(FaultPattern, AtReturnsSlotEvents) {
  FaultPattern p;
  p.add(FaultTag::kFailure, 0, 1);
  p.add(FaultTag::kFailure, 1, 3);
  p.add(FaultTag::kRestart, 0, 3);
  p.add(FaultTag::kFailure, 2, 7);
  const auto at3 = p.at(3);
  ASSERT_EQ(at3.size(), 2u);
  EXPECT_EQ(at3[0].pid, 1u);
  EXPECT_EQ(at3[1].tag, FaultTag::kRestart);
  EXPECT_EQ(p.at(0).size(), 0u);
  EXPECT_EQ(p.at(7).size(), 1u);
}

TEST(FaultPattern, StreamFormat) {
  std::ostringstream os;
  os << FaultEvent{FaultTag::kRestart, 4, 9};
  EXPECT_EQ(os.str(), "<restart, 4, 9>");
}

TEST(FaultPattern, TextRoundTrip) {
  FaultPattern p;
  p.add(FaultTag::kFailure, 0, 1);
  p.add(FaultTag::kRestart, 0, 4);
  p.add(FaultTag::kFailure, 9, 4);
  const std::string text = pattern_to_text(p);
  EXPECT_EQ(text, "F 0 1\nR 0 4\nF 9 4\n");

  const FaultPattern q = pattern_from_text(text);
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q.events(), p.events());
  EXPECT_EQ(q.failures(), 2u);
  EXPECT_EQ(q.restarts(), 1u);
}

TEST(FaultPattern, TextParsingToleratesBlankLines) {
  const FaultPattern p = pattern_from_text("\nF 1 2\n\nR 1 3\n\n");
  EXPECT_EQ(p.size(), 2u);
}

TEST(FaultPattern, TextParsingRejectsGarbage) {
  EXPECT_THROW((void)pattern_from_text("X 1 2\n"), std::logic_error);
  EXPECT_THROW((void)pattern_from_text("F one 2\n"), std::logic_error);
  EXPECT_THROW((void)pattern_from_text("F 1 9\nF 1 2\n"), std::logic_error);
}

TEST(FaultPattern, EmptyTextRoundTrip) {
  EXPECT_TRUE(pattern_from_text("").empty());
  EXPECT_EQ(pattern_to_text(FaultPattern{}), "");
}

}  // namespace
}  // namespace rfsp
