// The for_each_resilient / map_resilient public API: arbitrary idempotent
// task sets completing under failures, on every eligible algorithm.
#include <gtest/gtest.h>

#include "fault/adversaries.hpp"
#include "fault/iteration_killer.hpp"
#include "util/error.hpp"
#include "writeall/algv.hpp"
#include "writeall/foreach.hpp"

namespace rfsp {
namespace {

TEST(MapResilient, ComputesPureFunctionFaultFree) {
  NoFailures none;
  const auto r = map_resilient(
      100, [](Addr i) { return static_cast<Word>(i * i); }, none,
      {.processors = 8});
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.user_memory.size(), 100u);
  for (Addr i = 0; i < 100; ++i) {
    EXPECT_EQ(r.user_memory[i], static_cast<Word>(i * i));
  }
}

TEST(MapResilient, SurvivesRestartStorms) {
  for (WriteAllAlgo algo :
       {WriteAllAlgo::kCombinedVX, WriteAllAlgo::kX, WriteAllAlgo::kV}) {
    RandomAdversary adversary(31, {.fail_prob = 0.15, .restart_prob = 0.6});
    const auto r = map_resilient(
        257, [](Addr i) { return static_cast<Word>(3 * i + 7); }, adversary,
        {.processors = 16, .algo = algo});
    ASSERT_TRUE(r.completed) << to_string(algo);
    for (Addr i = 0; i < 257; ++i) {
      ASSERT_EQ(r.user_memory[i], static_cast<Word>(3 * i + 7))
          << to_string(algo) << " i=" << i;
    }
    EXPECT_GT(r.tally.pattern_size(), 0u) << to_string(algo);
  }
}

TEST(MapResilient, SingleTaskSingleProcessor) {
  NoFailures none;
  const auto r = map_resilient(1, [](Addr) { return Word{9}; }, none,
                               {.processors = 1});
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.user_memory[0], 9);
}

TEST(ForEachResilient, MultiCycleTasksWithInit) {
  // Tasks that read caller-initialized input and write two output cells
  // over two micro-cycles: out[i] = in[i] + 1, aux[i] = 2 * in[i].
  constexpr Addr kN = 64;
  class TwoPhaseTask final : public TaskSpec {
   public:
    unsigned cycles_per_task() const override { return 2; }
    std::size_t scratch_words() const override { return 1; }
    void run(CycleContext& ctx, Addr i, unsigned k,
             std::span<Word> scratch) const override {
      if (k == 0) {
        scratch[0] = ctx.read(i);  // in[i] lives at user base 0
        ctx.write(kN + i, scratch[0] + 1);
      } else {
        // Re-read the input rather than trusting scratch across cycles?
        // No: scratch persists within an attempt, and a restarted attempt
        // re-runs k = 0 first. Write the second output.
        ctx.write(2 * kN + i, 2 * scratch[0]);
      }
    }
  };

  ForEachOptions options;
  options.processors = 8;
  options.user_memory = 3 * kN;
  options.init = [](SharedMemory& mem, Addr base) {
    for (Addr i = 0; i < kN; ++i) {
      mem.write(base + i, static_cast<Word>(10 + i));
    }
  };
  const TwoPhaseTask task;
  RandomAdversary adversary(77, {.fail_prob = 0.1, .restart_prob = 0.5});
  const auto r = for_each_resilient(kN, task, adversary, options);
  ASSERT_TRUE(r.completed);
  for (Addr i = 0; i < kN; ++i) {
    EXPECT_EQ(r.user_memory[kN + i], static_cast<Word>(11 + i));
    EXPECT_EQ(r.user_memory[2 * kN + i], static_cast<Word>(2 * (10 + i)));
  }
}

TEST(ForEachResilient, RejectsNonFaultTolerantDistributors) {
  NoFailures none;
  EXPECT_THROW(map_resilient(8, [](Addr) { return Word{1}; }, none,
                             {.processors = 2,
                              .algo = WriteAllAlgo::kTrivial}),
               ConfigError);
}

TEST(ForEachResilient, CompletesUnderTheIterationKiller) {
  // Even the V-stalling pattern cannot stop the default (combined VX)
  // distributor.
  const Addr n = 64;
  const Pid p = 8;
  const VLayout probe(0, n, n, p, /*task cycles for map=*/1);
  IterationKiller killer(2 * probe.iteration);
  const auto r = map_resilient(
      n, [](Addr i) { return static_cast<Word>(i + 1); }, killer,
      {.processors = p});
  ASSERT_TRUE(r.completed);
  for (Addr i = 0; i < n; ++i) {
    EXPECT_EQ(r.user_memory[i], static_cast<Word>(i + 1));
  }
}

}  // namespace
}  // namespace rfsp
