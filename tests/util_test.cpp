#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/bits.hpp"
#include "util/error.hpp"
#include "util/fixed_vec.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "writeall/layout.hpp"

namespace rfsp {
namespace {

// --- bits -------------------------------------------------------------------

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 40));
  EXPECT_FALSE(is_pow2((1ull << 40) + 1));
}

TEST(Bits, CeilPow2) {
  EXPECT_EQ(ceil_pow2(0), 1u);
  EXPECT_EQ(ceil_pow2(1), 1u);
  EXPECT_EQ(ceil_pow2(2), 2u);
  EXPECT_EQ(ceil_pow2(3), 4u);
  EXPECT_EQ(ceil_pow2(4), 4u);
  EXPECT_EQ(ceil_pow2(1000), 1024u);
}

TEST(Bits, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(1ull << 50), 50u);
}

TEST(Bits, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
}

TEST(Bits, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0u);
  EXPECT_EQ(ceil_div(1, 3), 1u);
  EXPECT_EQ(ceil_div(3, 3), 1u);
  EXPECT_EQ(ceil_div(4, 3), 2u);
}

TEST(Bits, MsbBit) {
  // 0b101 in a 3-bit word: bit 0 (MSB) = 1, bit 1 = 0, bit 2 = 1.
  EXPECT_TRUE(msb_bit(0b101, 0, 3));
  EXPECT_FALSE(msb_bit(0b101, 1, 3));
  EXPECT_TRUE(msb_bit(0b101, 2, 3));
}

// --- FixedVec ----------------------------------------------------------------

TEST(FixedVec, PushAndIterate) {
  FixedVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  v.push_back(7);
  v.push_back(8);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 7);
  EXPECT_EQ(v[1], 8);
  int sum = 0;
  for (int x : v) sum += x;
  EXPECT_EQ(sum, 15);
}

TEST(FixedVec, OverflowThrows) {
  FixedVec<int, 2> v{1, 2};
  EXPECT_THROW(v.push_back(3), std::logic_error);
}

TEST(FixedVec, OutOfRangeIndexThrows) {
  FixedVec<int, 2> v{1};
  EXPECT_THROW((void)v[1], std::logic_error);
}

TEST(FixedVec, Clear) {
  FixedVec<int, 2> v{1, 2};
  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back(9);
  EXPECT_EQ(v[0], 9);
}

// --- rng ---------------------------------------------------------------------

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(13), 13u);
  EXPECT_EQ(rng.below(1), 0u);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowCoversRange) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, Mix64SensitiveToAllArgs) {
  EXPECT_NE(mix64(1, 2, 3), mix64(1, 2, 4));
  EXPECT_NE(mix64(1, 2, 3), mix64(1, 3, 3));
  EXPECT_NE(mix64(1, 2, 3), mix64(2, 2, 3));
}

// --- stamped cells ------------------------------------------------------------

TEST(Stamps, ZeroStampIsIdentityOnPayload) {
  EXPECT_EQ(stamped(0, 1), 1);
  EXPECT_EQ(payload_of(1, 0), 1);
  EXPECT_EQ(payload_of(0, 0), 0);
}

TEST(Stamps, RoundTrip) {
  const Word cell = stamped(7, 12345);
  EXPECT_EQ(payload_of(cell, 7), 12345);
}

TEST(Stamps, StaleEpochReadsAsZero) {
  const Word cell = stamped(7, 12345);
  EXPECT_EQ(payload_of(cell, 8), 0);
  EXPECT_EQ(payload_of(cell, 6), 0);
  EXPECT_EQ(payload_of(cell, 0), 0);
}

// --- table ---------------------------------------------------------------------

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "23"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(Format, FixedAndInt) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_int(0), "0");
  EXPECT_EQ(fmt_int(999), "999");
  EXPECT_EQ(fmt_int(1000), "1,000");
  EXPECT_EQ(fmt_int(1234567), "1,234,567");
}

}  // namespace
}  // namespace rfsp
