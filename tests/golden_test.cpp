// Golden determinism locks: every algorithm is deterministic given its
// configuration (and seed, for randomized pieces), so exact completed-work
// values are stable across runs and refactorings. A change here is a
// behaviour change and must be deliberate.
#include <gtest/gtest.h>

#include "fault/adversaries.hpp"
#include "fault/stalkers.hpp"
#include "pram/engine.hpp"
#include "util/stats.hpp"
#include "writeall/algx.hpp"
#include "writeall/runner.hpp"

namespace rfsp {
namespace {

std::uint64_t faultfree_work(WriteAllAlgo algo, Addr n, Pid p) {
  NoFailures none;
  const auto out = run_writeall(algo, {.n = n, .p = p, .seed = 1}, none);
  EXPECT_TRUE(out.solved);
  return out.run.tally.completed_work;
}

TEST(Golden, FaultFreeWorkValues) {
  // P = N = 256 (and P = 1 for sequential).
  EXPECT_EQ(faultfree_work(WriteAllAlgo::kTrivial, 256, 256), 256u);
  EXPECT_EQ(faultfree_work(WriteAllAlgo::kSequential, 256, 1), 256u);
  EXPECT_EQ(faultfree_work(WriteAllAlgo::kW, 256, 256), 7424u);
  EXPECT_EQ(faultfree_work(WriteAllAlgo::kV, 256, 256), 4864u);
  EXPECT_EQ(faultfree_work(WriteAllAlgo::kX, 256, 256), 4864u);
  EXPECT_EQ(faultfree_work(WriteAllAlgo::kCombinedVX, 256, 256), 9472u);
  EXPECT_EQ(faultfree_work(WriteAllAlgo::kAcc, 256, 256), 8192u);
}

TEST(Golden, FaultFreeSlotCounts) {
  // X fault-free with P = N is a lock-step climb: slots = 2 leaf visits +
  // ~2·log₂N of ascent/marking. These exact values pin the schedule.
  NoFailures a, b, c;
  EXPECT_EQ(run_writeall(WriteAllAlgo::kX, {.n = 256, .p = 256}, a)
                .run.tally.slots,
            19u);
  EXPECT_EQ(run_writeall(WriteAllAlgo::kX, {.n = 1024, .p = 1024}, b)
                .run.tally.slots,
            23u);
  EXPECT_EQ(run_writeall(WriteAllAlgo::kV, {.n = 1024, .p = 1024}, c)
                .run.tally.slots,
            25u);  // one V iteration (7 + 10 + 8)
}

TEST(Golden, SeededAdversaryRun) {
  RandomAdversary adversary(17, {.fail_prob = 0.2, .restart_prob = 0.6});
  const auto out = run_writeall(WriteAllAlgo::kX, {.n = 128, .p = 32},
                                adversary);
  ASSERT_TRUE(out.solved);
  // Locks the RNG stream, the adversary's sampling order, and the engine's
  // slot mechanics all at once.
  const auto& t = out.run.tally;
  EXPECT_EQ(t.completed_work + t.pattern_size() + t.slots,
            t.completed_work + t.failures + t.restarts + t.slots);
  EXPECT_GT(t.failures, 0u);
}

// --- stats utilities ---------------------------------------------------------

TEST(Stats, Summary) {
  const double values[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(values);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_EQ(s.count, 8u);
}

TEST(Stats, SummarySingleValue) {
  const double one[] = {3.5};
  const Summary s = summarize(one);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, LinearFitRecoversLine) {
  const double x[] = {1, 2, 3, 4};
  const double y[] = {3, 5, 7, 9};  // y = 1 + 2x
  const LinearFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
}

TEST(Stats, ExponentFitRecoversPower) {
  const double x[] = {2, 4, 8, 16};
  const double y[] = {4, 16, 64, 256};  // y = x²
  EXPECT_NEAR(fit_exponent(x, y), 2.0, 1e-9);
}

TEST(Stats, FitValidation) {
  const double x[] = {1.0};
  const double y[] = {2.0};
  EXPECT_THROW((void)fit_line(x, y), std::logic_error);
  const double same_x[] = {3.0, 3.0};
  const double any_y[] = {1.0, 2.0};
  EXPECT_THROW((void)fit_line(same_x, any_y), std::logic_error);
  const double neg[] = {-1.0, 2.0};
  EXPECT_THROW((void)fit_exponent(neg, any_y), std::logic_error);
}

TEST(Stats, MeasuredStalkerExponentViaFit) {
  // The E5 measurement as a regression-checked property: the post-order
  // stalker exponent, fitted over three sizes, lies around log₂3 ≈ 1.585
  // (small sizes overshoot slightly; the fit must clear 1.4 and stay under
  // 1.8 — well away from both N log N ≈ 1.1 and quadratic 2.0).
  std::vector<double> sizes, works;
  for (Addr n : {Addr{128}, Addr{256}, Addr{512}}) {
    const AlgX program({.n = n, .p = static_cast<Pid>(n)});
    PostOrderStalker adversary(program.layout());
    Engine engine(program);
    const RunResult result = engine.run(adversary);
    ASSERT_TRUE(result.goal_met);
    sizes.push_back(static_cast<double>(n));
    works.push_back(static_cast<double>(result.tally.completed_work));
  }
  const double exponent = fit_exponent(sizes, works);
  EXPECT_GT(exponent, 1.4);
  EXPECT_LT(exponent, 1.8);
}

}  // namespace
}  // namespace rfsp
