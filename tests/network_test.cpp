// The combining interconnection network (§2.3): routing correctness,
// combining semantics, and the hot-spot behaviour that justifies assuming
// unit-cost concurrent access.
#include <gtest/gtest.h>

#include <utility>

#include "network/combining.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rfsp {
namespace {

TEST(Network, SinglePacketLatencyIsStageCount) {
  CombiningNetwork net({.ports = 16}, 64);
  const MemRequest req{.pid = 3, .addr = 10, .write = false};
  const BatchResult r = net.route({&req, 1});
  EXPECT_EQ(r.ticks, net.stages());
  EXPECT_EQ(r.delivered, 1u);
  ASSERT_TRUE(r.read_values[0].has_value());
  EXPECT_EQ(*r.read_values[0], 0);
}

TEST(Network, WritesLandAndReadsSeeThem) {
  CombiningNetwork net({.ports = 8}, 32);
  const MemRequest write{.pid = 0, .addr = 5, .write = true, .value = 42};
  net.route({&write, 1});
  EXPECT_EQ(net.memory(5), 42);

  const MemRequest read{.pid = 1, .addr = 5, .write = false};
  const BatchResult r = net.route({&read, 1});
  EXPECT_EQ(*r.read_values[0], 42);
}

TEST(Network, BatchReadsObserveBatchStartMemory) {
  // Synchronous PRAM semantics: a read and a write to one cell in the same
  // batch — the read returns the pre-batch value.
  CombiningNetwork net({.ports = 4}, 16);
  const MemRequest seed{.pid = 0, .addr = 7, .write = true, .value = 1};
  net.route({&seed, 1});

  const MemRequest batch[] = {
      {.pid = 0, .addr = 7, .write = true, .value = 9},
      {.pid = 1, .addr = 7, .write = false},
  };
  const BatchResult r = net.route(batch);
  EXPECT_EQ(*r.read_values[1], 1);  // pre-batch value
  EXPECT_EQ(net.memory(7), 9);      // the write landed afterwards
}

TEST(Network, AllDistinctModulesRouteWithoutConflict) {
  // A permutation batch (one packet per module) drains in ~stage time.
  constexpr unsigned kPorts = 16;
  CombiningNetwork net({.ports = kPorts}, kPorts);
  std::vector<MemRequest> batch;
  for (Pid pid = 0; pid < kPorts; ++pid) {
    batch.push_back({.pid = pid, .addr = pid, .write = true,
                     .value = static_cast<Word>(100 + pid)});
  }
  const BatchResult r = net.route(batch);
  EXPECT_EQ(r.delivered, kPorts);
  for (Addr a = 0; a < kPorts; ++a) {
    EXPECT_EQ(net.memory(a), static_cast<Word>(100 + a));
  }
  // The identity permutation is congestion-prone on an Omega network but
  // still bounded well below serialization.
  EXPECT_LE(r.ticks, 3u * net.stages());
}

TEST(Network, HotSpotCombinesIntoLogarithmicLatency) {
  constexpr unsigned kPorts = 64;
  CombiningNetwork net({.ports = kPorts, .combining = true}, 16);
  std::vector<MemRequest> batch;
  for (Pid pid = 0; pid < kPorts; ++pid) {
    batch.push_back({.pid = pid, .addr = 3, .write = false});
  }
  const BatchResult r = net.route(batch);
  EXPECT_EQ(r.merges + r.delivered, kPorts);  // everyone was answered
  for (const auto& v : r.read_values) ASSERT_TRUE(v.has_value());
  // Combining collapses the hot spot: latency stays near the pipe depth.
  EXPECT_LE(r.ticks, 3u * net.stages());
  EXPECT_GE(r.merges, kPorts / 2);  // massive combining happened
}

TEST(Network, HotSpotWithoutCombiningSerializes) {
  constexpr unsigned kPorts = 64;
  CombiningNetwork with({.ports = kPorts, .combining = true}, 16);
  CombiningNetwork without({.ports = kPorts, .combining = false}, 16);
  std::vector<MemRequest> batch;
  for (Pid pid = 0; pid < kPorts; ++pid) {
    batch.push_back({.pid = pid, .addr = 3, .write = false});
  }
  const BatchResult fast = with.route(batch);
  const BatchResult slow = without.route(batch);
  EXPECT_EQ(slow.delivered, kPorts);
  EXPECT_EQ(slow.merges, 0u);
  // Tree saturation: Θ(P) vs Θ(log P).
  EXPECT_GE(slow.ticks, kPorts / 4);
  EXPECT_GE(slow.ticks, 4 * fast.ticks);
  EXPECT_GT(slow.max_queue, fast.max_queue);
}

TEST(Network, CommonWritesCombine) {
  constexpr unsigned kPorts = 16;
  CombiningNetwork net({.ports = kPorts}, 8);
  std::vector<MemRequest> batch;
  for (Pid pid = 0; pid < kPorts; ++pid) {
    batch.push_back({.pid = pid, .addr = 2, .write = true, .value = 7});
  }
  const BatchResult r = net.route(batch);
  EXPECT_EQ(net.memory(2), 7);
  EXPECT_GE(r.merges, kPorts / 2);  // COMMON writes merge like reads
  EXPECT_LE(r.ticks, 3u * net.stages());
}

TEST(Network, NonCommonWritesSerializeInsteadOfMerging) {
  CombiningNetwork net({.ports = 4}, 8);
  const MemRequest batch[] = {
      {.pid = 0, .addr = 2, .write = true, .value = 1},
      {.pid = 2, .addr = 2, .write = true, .value = 2},
  };
  const BatchResult r = net.route(batch);
  EXPECT_EQ(r.merges, 0u);
  EXPECT_EQ(r.delivered, 2u);  // both land (in network arrival order)
}

TEST(Network, RandomBatchesMatchDirectMemorySemantics) {
  // Property: for any batch, read results equal the pre-batch memory and
  // post-batch memory equals pre-batch overwritten by the batch's writes
  // (COMMON batches only), independent of combining.
  Rng rng(55);
  for (const bool combining : {true, false}) {
    CombiningNetwork net({.ports = 32, .combining = combining}, 64);
    std::vector<Word> shadow(64, 0);
    for (int round = 0; round < 50; ++round) {
      std::vector<MemRequest> batch;
      std::vector<std::pair<Addr, Word>> writes;
      for (Pid pid = 0; pid < 32; ++pid) {
        if (rng.chance(0.3)) continue;  // idle port
        const Addr addr = static_cast<Addr>(rng.below(64));
        if (rng.chance(0.4)) {
          // COMMON-safe write: the value is a function of the cell.
          const Word value = static_cast<Word>(addr * 3 + round);
          batch.push_back(
              {.pid = pid, .addr = addr, .write = true, .value = value});
          writes.emplace_back(addr, value);
        } else {
          batch.push_back({.pid = pid, .addr = addr, .write = false});
        }
      }
      const BatchResult r = net.route(batch);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch[i].write) {
          EXPECT_FALSE(r.read_values[i].has_value());
        } else {
          ASSERT_TRUE(r.read_values[i].has_value());
          EXPECT_EQ(*r.read_values[i], shadow[batch[i].addr])
              << "combining=" << combining << " round=" << round;
        }
      }
      for (const auto& [addr, value] : writes) shadow[addr] = value;
      for (Addr a = 0; a < 64; ++a) {
        ASSERT_EQ(net.memory(a), shadow[a])
            << "combining=" << combining << " round=" << round;
      }
    }
  }
}

TEST(Network, RandomPermutationsRoute) {
  Rng rng(77);
  constexpr unsigned kPorts = 64;
  for (int round = 0; round < 20; ++round) {
    CombiningNetwork net({.ports = kPorts}, kPorts);
    // Random permutation of modules.
    std::vector<Addr> dest(kPorts);
    for (Addr i = 0; i < kPorts; ++i) dest[i] = i;
    for (Addr i = kPorts; i-- > 1;) {
      std::swap(dest[i], dest[rng.below(i + 1)]);
    }
    std::vector<MemRequest> batch;
    for (Pid pid = 0; pid < kPorts; ++pid) {
      batch.push_back({.pid = pid, .addr = dest[pid], .write = true,
                       .value = static_cast<Word>(pid + 1)});
    }
    const BatchResult r = net.route(batch);
    EXPECT_EQ(r.delivered + r.merges, kPorts);
    for (Pid pid = 0; pid < kPorts; ++pid) {
      EXPECT_EQ(net.memory(dest[pid]), static_cast<Word>(pid + 1));
    }
  }
}

TEST(Network, Validation) {
  CombiningNetwork net({.ports = 4}, 8);
  std::vector<MemRequest> too_many(5, MemRequest{});
  EXPECT_THROW((void)net.route(too_many), std::logic_error);
  const MemRequest oob{.pid = 0, .addr = 8, .write = false};
  EXPECT_THROW((void)net.route({&oob, 1}), std::logic_error);
}

}  // namespace
}  // namespace rfsp
