// Remaining public-surface corners: the runner factory, memory-base
// offsets, stalker options, simulator option passthrough, and a few
// degenerate instances not covered by the focused suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "fault/adversaries.hpp"
#include "fault/stalkers.hpp"
#include "pram/engine.hpp"
#include "programs/programs.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "writeall/acc.hpp"
#include "writeall/algx.hpp"
#include "writeall/runner.hpp"

namespace rfsp {
namespace {

TEST(Runner, NamesAreUniqueAndStable) {
  std::set<std::string> names;
  for (WriteAllAlgo algo : all_writeall_algos()) {
    names.insert(std::string(to_string(algo)));
  }
  EXPECT_EQ(names.size(), all_writeall_algos().size());
  EXPECT_EQ(to_string(WriteAllAlgo::kCombinedVX), "VX");
  EXPECT_EQ(to_string(WriteAllAlgo::kSnapshot), "snapshot");
}

TEST(Runner, RobustListIsASubsetOfAll) {
  const auto& all = all_writeall_algos();
  for (WriteAllAlgo algo : robust_writeall_algos()) {
    EXPECT_NE(std::find(all.begin(), all.end(), algo), all.end());
  }
  // The baselines are deliberately not in the robust list.
  const auto& robust = robust_writeall_algos();
  EXPECT_EQ(std::find(robust.begin(), robust.end(), WriteAllAlgo::kTrivial),
            robust.end());
  EXPECT_EQ(std::find(robust.begin(), robust.end(), WriteAllAlgo::kW),
            robust.end());
}

TEST(Runner, SnapshotModeIsEnabledAutomatically) {
  // run_writeall must flip unit_cost_snapshot for the snapshot algorithm
  // even when the caller's options left it off.
  NoFailures none;
  EngineOptions options;  // snapshot off
  const auto out = run_writeall(WriteAllAlgo::kSnapshot, {.n = 32, .p = 32},
                                none, options);
  EXPECT_TRUE(out.solved);
}

TEST(Runner, FactoryProducesTheRightPrograms) {
  for (WriteAllAlgo algo : all_writeall_algos()) {
    const WriteAllConfig config{
        .n = 16, .p = algo == WriteAllAlgo::kSequential ? Pid{1} : Pid{4}};
    const auto program = make_writeall(algo, config);
    EXPECT_EQ(program->name(), to_string(algo));
    EXPECT_EQ(program->processors(), config.p);
    EXPECT_GE(program->memory_size(), config.n);
  }
}

TEST(BaseOffset, AlgorithmsRelocateCleanly) {
  // With config.base = 10, the region [0, 10) belongs to the caller and
  // must never be touched.
  for (WriteAllAlgo algo :
       {WriteAllAlgo::kV, WriteAllAlgo::kX, WriteAllAlgo::kCombinedVX}) {
    const WriteAllConfig config{.n = 64, .p = 8, .seed = 2, .base = 10};
    const auto program = make_writeall(algo, config);
    RandomAdversary adversary(3, {.fail_prob = 0.1, .restart_prob = 0.5});
    Engine engine(*program);
    const RunResult result = engine.run(adversary);
    ASSERT_TRUE(result.goal_met) << to_string(algo);
    EXPECT_TRUE(program->solved(engine.memory())) << to_string(algo);
    for (Addr a = 0; a < 10; ++a) {
      EXPECT_EQ(engine.memory().read(a), 0)
          << to_string(algo) << " touched caller cell " << a;
    }
    EXPECT_EQ(program->x_base(), 10u);
  }
}

TEST(LeafStalkerOptions, ExplicitTargetElement) {
  const Addr n = 64;
  const AccWriteAll program({.n = n, .p = static_cast<Pid>(n), .seed = 4});
  LeafStalker adversary(program.layout(),
                        {.target_element = 17, .restart_variant = false});
  Engine engine(program);
  const RunResult result = engine.run(adversary);
  EXPECT_TRUE(result.goal_met);
  EXPECT_TRUE(program.solved(engine.memory()));
}

TEST(LeafStalkerOptions, OutOfRangeTargetRejected) {
  const AlgX program({.n = 8, .p = 8});
  EXPECT_THROW(LeafStalker(program.layout(), {.target_element = 8}),
               std::logic_error);
}

TEST(PostOrderStalker, TinyInstances) {
  for (Addr n : {Addr{2}, Addr{4}}) {
    const AlgX program({.n = n, .p = static_cast<Pid>(n)});
    PostOrderStalker adversary(program.layout());
    Engine engine(program);
    const RunResult result = engine.run(adversary);
    EXPECT_TRUE(result.goal_met) << "n=" << n;
    EXPECT_TRUE(program.solved(engine.memory())) << "n=" << n;
  }
}

TEST(SimOptions, PatternRecordingPassesThrough) {
  PrefixSumProgram program({3, 1, 4, 1, 5, 9, 2, 6});
  RandomAdversary adversary(5, {.fail_prob = 0.2, .restart_prob = 0.6});
  const SimResult r = simulate(
      program, adversary, {.physical_processors = 4, .record_pattern = true});
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.pattern.size(), r.tally.pattern_size());
}

TEST(SimOptions, SlotLimitSurfacesAsIncomplete) {
  PrefixSumProgram program({1, 2, 3, 4, 5, 6, 7, 8});
  NoFailures none;
  const SimResult r =
      simulate(program, none, {.physical_processors = 4, .max_slots = 3});
  EXPECT_FALSE(r.completed);
  EXPECT_LT(r.passes, 2 * program.steps());
}

TEST(Degenerate, TwoCellCombined) {
  // The smallest nontrivial instance for every piece of the combined
  // machinery (two leaves, one-level trees).
  RandomAdversary adversary(6, {.fail_prob = 0.3, .restart_prob = 0.8});
  const auto out =
      run_writeall(WriteAllAlgo::kCombinedVX, {.n = 2, .p = 2}, adversary);
  EXPECT_TRUE(out.solved);
}

TEST(Degenerate, StampedStandaloneRuns) {
  // A non-zero epoch on a standalone run must behave identically to epoch
  // zero (same work, solved) — stamping is transparent.
  NoFailures a, b;
  const auto plain =
      run_writeall(WriteAllAlgo::kX, {.n = 128, .p = 32, .stamp = 0}, a);
  const auto stamped_run =
      run_writeall(WriteAllAlgo::kX, {.n = 128, .p = 32, .stamp = 9}, b);
  ASSERT_TRUE(plain.solved);
  ASSERT_TRUE(stamped_run.solved);
  EXPECT_EQ(plain.run.tally.completed_work,
            stamped_run.run.tally.completed_work);
}

TEST(Degenerate, SnapshotWithOneProcessor) {
  NoFailures none;
  const auto out =
      run_writeall(WriteAllAlgo::kSnapshot, {.n = 17, .p = 1}, none);
  EXPECT_TRUE(out.solved);
  // One processor, one write per cycle: exactly N work plus the final
  // empty-observation cycle.
  EXPECT_LE(out.run.tally.completed_work, 17u + 1u);
}

}  // namespace
}  // namespace rfsp
