// The threaded runtime: algorithm X under genuine asynchrony (OS threads,
// atomic shared words) with and without injected restart failures.
#include <gtest/gtest.h>

#include "parallel/threaded.hpp"
#include "util/error.hpp"

namespace rfsp {
namespace {

TEST(AtomicMemory, LoadStore) {
  AtomicMemory mem(8);
  EXPECT_EQ(mem.load(3), 0);
  mem.store(3, 42);
  EXPECT_EQ(mem.load(3), 42);
  EXPECT_THROW((void)mem.load(8), std::logic_error);
}

TEST(Threaded, SingleWorkerSolves) {
  const ThreadedResult r =
      run_threaded_writeall({.n = 512, .workers = 1, .seed = 3});
  EXPECT_TRUE(r.solved);
  EXPECT_GE(r.loop_iterations, 512u);
}

TEST(Threaded, ManyWorkersSolve) {
  for (unsigned workers : {2u, 4u, 8u}) {
    const ThreadedResult r = run_threaded_writeall(
        {.n = 2048, .workers = workers, .seed = workers});
    EXPECT_TRUE(r.solved) << "workers=" << workers;
  }
}

TEST(Threaded, RandomDescentVariantSolves) {
  const ThreadedResult r = run_threaded_writeall(
      {.n = 1024, .workers = 4, .random_descent = true, .seed = 9});
  EXPECT_TRUE(r.solved);
}

TEST(Threaded, SurvivesInjectedRestarts) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const ThreadedResult r = run_threaded_writeall({.n = 4096,
                                                    .workers = 4,
                                                    .seed = seed,
                                                    .failures_per_worker = 3.0});
    EXPECT_TRUE(r.solved) << "seed=" << seed;
  }
}

TEST(Threaded, NonPowerOfTwoSizes) {
  for (Addr n : {Addr{1}, Addr{3}, Addr{100}, Addr{1000}}) {
    const ThreadedResult r =
        run_threaded_writeall({.n = n, .workers = n < 4 ? 1u : 4u});
    EXPECT_TRUE(r.solved) << "n=" << n;
  }
}

TEST(Threaded, MapPayloadComputesResults) {
  ThreadedOptions options;
  options.n = 2048;
  options.workers = 4;
  options.seed = 5;
  options.map = [](Addr i) { return static_cast<Word>(i * 2 + 1); };
  const ThreadedResult r = run_threaded_writeall(options);
  ASSERT_TRUE(r.solved);
  ASSERT_EQ(r.map_output.size(), options.n);
  for (Addr i = 0; i < options.n; ++i) {
    EXPECT_EQ(r.map_output[i], static_cast<Word>(i * 2 + 1)) << i;
  }
}

TEST(Threaded, MapPayloadSurvivesInjectedRestarts) {
  ThreadedOptions options;
  options.n = 4096;
  options.workers = 6;
  options.seed = 11;
  options.failures_per_worker = 3.0;
  options.map = [](Addr i) { return static_cast<Word>((i * i) & 0xffff); };
  const ThreadedResult r = run_threaded_writeall(options);
  ASSERT_TRUE(r.solved);
  for (Addr i = 0; i < options.n; ++i) {
    ASSERT_EQ(r.map_output[i], static_cast<Word>((i * i) & 0xffff)) << i;
  }
}

TEST(Threaded, ConfigValidation) {
  EXPECT_THROW(run_threaded_writeall({.n = 2, .workers = 4}), ConfigError);
  EXPECT_THROW(run_threaded_writeall({.n = 8, .workers = 0}), ConfigError);
}

}  // namespace
}  // namespace rfsp
