#!/usr/bin/env bash
# Kill-and-resume demonstration (docs/resilience.md §3): run a Write-All
# workload three ways and prove the checkpoint/restore path is bit-exact.
#
#   1. baseline      — straight run, no checkpointing;
#   2. crashed       — same run with --checkpoint/--checkpoint-every, killed
#                      (via --crash-at-slot, a simulated hard exit inside the
#                      checkpoint hook) partway through; the file on disk
#                      holds a checkpoint OLDER than the crash point, so the
#                      resume must re-execute the gap;
#   3. resumed       — restore the checkpoint and run to completion.
#
# The resumed run's S / S' / |F| / parallel-time lines must equal the
# baseline's exactly; any divergence exits nonzero. CI runs this script.
#
# Usage: scripts/kill_resume.sh [build-dir] [algo] [n] [p]
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=${1:-build}
algo=${2:-VX}
n=${3:-4096}
p=${4:-256}

cli="$build_dir/examples/writeall_cli"
if [ ! -x "$cli" ]; then
  echo "error: $cli not found — build first:" >&2
  echo "  cmake -B $build_dir -S . && cmake --build $build_dir -j" >&2
  exit 1
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

common=(--algo "$algo" --n "$n" --p "$p" --adversary thrashing)
fingerprint() {
  grep -E "solved|completed S|attempted S'|\|F\||parallel time" "$1"
}

echo "== baseline run"
"$cli" "${common[@]}" >"$workdir/baseline.txt"
fingerprint "$workdir/baseline.txt"

echo "== crashed run (checkpoint every 64 slots, killed at slot >= 512)"
"$cli" "${common[@]}" \
  --checkpoint "$workdir/ck.json" --checkpoint-every 64 --crash-at-slot 512
if [ ! -s "$workdir/ck.json" ]; then
  echo "FAIL: the crashed run left no checkpoint behind" >&2
  exit 1
fi

echo "== resumed run"
"$cli" "${common[@]}" --resume "$workdir/ck.json" >"$workdir/resumed.txt"
fingerprint "$workdir/resumed.txt"

if diff <(fingerprint "$workdir/baseline.txt") \
        <(fingerprint "$workdir/resumed.txt") >"$workdir/diff.txt"; then
  echo "PASS: resumed run is bit-identical to the baseline"
else
  echo "FAIL: resumed run diverged from the baseline:" >&2
  cat "$workdir/diff.txt" >&2
  exit 1
fi
