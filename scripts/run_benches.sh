#!/usr/bin/env bash
# Run every experiment bench (E1–E21) with --benchmark_format=json and
# aggregate the results into BENCH_<tag>.json, one point of the perf
# trajectory the ROADMAP tracks PR over PR.
#
# Usage:
#   scripts/run_benches.sh [build-dir] [out-dir] [tag] [--force]
#
# Defaults: build-dir = build, out-dir = <build-dir>/bench-results,
# tag = $RFSP_BENCH_TAG or PR10. The aggregate lands in
# <out-dir>/BENCH_<tag>.json. If that file already exists the script
# refuses to run (an aggregate is a point on the perf trajectory —
# clobbering one silently rewrites history); pass --force to overwrite.
#
# Environment:
#   RFSP_BENCH_TAG=…     aggregate name when the tag argument is omitted.
#   RFSP_BENCH_LARGE=1   also run the minutes-long headline rows
#                        (E5/X-stalked/n:65536). Off by default so the
#                        whole suite stays a coffee-break run.
#   RFSP_BENCH_FILTER=…  extra --benchmark_filter regex applied to every
#                        binary (e.g. 'n:65536' for just the big rows).
set -euo pipefail

cd "$(dirname "$0")/.."

force=0
positional=()
for arg in "$@"; do
  if [ "$arg" = "--force" ]; then
    force=1
  else
    positional+=("$arg")
  fi
done

build_dir=${positional[0]:-build}
out_dir=${positional[1]:-"$build_dir/bench-results"}
tag=${positional[2]:-${RFSP_BENCH_TAG:-PR10}}

aggregate_out="$out_dir/BENCH_${tag}.json"
if [ -e "$aggregate_out" ] && [ "$force" != 1 ]; then
  echo "error: $aggregate_out already exists — pick another tag or pass" >&2
  echo "       --force to overwrite the recorded trajectory point" >&2
  exit 1
fi

if [ ! -d "$build_dir/bench" ]; then
  echo "error: $build_dir/bench not found — build first:" >&2
  echo "  cmake -B $build_dir -S . && cmake --build $build_dir -j" >&2
  exit 1
fi

mkdir -p "$out_dir"

# The minutes-long rows are opt-in; everything else always runs.
exclude_large='E5/X-stalked/n:65536'
for bench in "$build_dir"/bench/*; do
  [ -x "$bench" ] || continue
  name=$(basename "$bench")
  args=(--benchmark_format=json --benchmark_out="$out_dir/$name.json"
        --benchmark_out_format=json)
  if [ -n "${RFSP_BENCH_FILTER:-}" ]; then
    args+=(--benchmark_filter="${RFSP_BENCH_FILTER}")
  elif [ "${RFSP_BENCH_LARGE:-0}" != 1 ]; then
    args+=(--benchmark_filter="-${exclude_large}")
  fi
  echo "== $name"
  # The binaries print their report tables to stdout; keep them visible but
  # let the JSON go to the per-binary file.
  "$bench" "${args[@]}" >/dev/null
done

python3 - "$out_dir" "$tag" <<'PY'
import json, pathlib, sys

out_dir = pathlib.Path(sys.argv[1])
tag = sys.argv[2]
runs = {}
for path in sorted(out_dir.glob("bench_*.json")):
    try:
        with open(path) as f:
            data = json.load(f)
    except json.JSONDecodeError:
        # A filter that matches nothing leaves an empty out-file behind.
        continue
    runs[path.stem] = [
        {
            "name": b["name"],
            "real_time_ms": round(b["real_time"] / 1e6, 3)
            if b.get("time_unit") == "ns"
            else b["real_time"],
            **{
                k: v
                for k, v in b.items()
                if k not in {"name", "real_time", "cpu_time", "time_unit",
                             "run_name", "run_type", "repetitions",
                             "repetition_index", "threads", "family_index",
                             "per_family_instance_index", "iterations"}
            },
        }
        for b in data.get("benchmarks", [])
    ]

aggregate = {
    "schema": "rfsp-bench-v1",
    "tag": tag,
    "note": "Fresh run of every bench binary; see BENCH_PR1.json at the "
            "repo root for the checked-in before/after engine comparison.",
    # The trace transport the E18 sink-overhead rows measured against, so a
    # future wire-format bump shows up in the trajectory metadata (the
    # format spec lives in docs/observability.md).
    "trace_format": "rfsp-trace-binary v1 / jsonl",
    "runs": runs,
}
out = out_dir / f"BENCH_{tag}.json"
with open(out, "w") as f:
    json.dump(aggregate, f, indent=2)
    f.write("\n")
print(f"aggregated {sum(len(v) for v in runs.values())} benchmark rows "
      f"from {len(runs)} binaries -> {out}")
PY
