#!/usr/bin/env bash
# Trace transport round-trip check: drive adversarial workloads through
# writeall_cli with the JSONL sink and the binary sink (same seed — the
# engine's event stream is deterministic, so the two runs emit the same
# events), then require
#   * `trace_cli check` to pass the stream-invariant audit on both files,
#   * binary -> jsonl conversion to reproduce the engine's JSONL bytes
#     exactly (and jsonl -> binary the engine's binary bytes),
#   * `trace_cli check A B` to find the decoded event streams identical,
#   * `trace_cli stat` of both files to agree line for line.
# Exits non-zero on the first violation. This is the CI gate for the
# lossless-transport contract in docs/observability.md.
#
# Usage: scripts/trace_roundtrip.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir=${1:-build}
cli="$build_dir/examples/writeall_cli"
trace_cli="$build_dir/examples/trace_cli"

for bin in "$cli" "$trace_cli"; do
  if [ ! -x "$bin" ]; then
    echo "error: $bin not found — build first:" >&2
    echo "  cmake -B $build_dir -S . && cmake --build $build_dir -j" >&2
    exit 1
  fi
done

work_dir=$(mktemp -d)
trap 'rm -rf "$work_dir"' EXIT

status=0

# Workloads: heavy random fail/restart churn and the thrashing worst case,
# on the algorithms whose traces exercise every event kind (phases, halts,
# failures, restarts).
run_case() {
  local label=$1; shift
  local jsonl="$work_dir/$label.jsonl"
  local binary="$work_dir/$label.bin"

  # An unsolved run (e.g. thrashing into the slot limit) exits non-zero but
  # still writes a complete trace — the slot_limit run_end is part of the
  # round-trip coverage, not a script failure.
  "$cli" "$@" --trace-out "$jsonl" >/dev/null || true
  "$cli" "$@" --trace-out "$binary" >/dev/null || true

  local fail=0
  "$trace_cli" check "$jsonl" >/dev/null || fail=1
  "$trace_cli" check "$binary" >/dev/null || fail=1

  "$trace_cli" convert "$binary" "$work_dir/$label.from-bin.jsonl" >/dev/null
  cmp -s "$jsonl" "$work_dir/$label.from-bin.jsonl" || fail=1
  "$trace_cli" convert "$jsonl" "$work_dir/$label.from-jsonl.bin" >/dev/null
  cmp -s "$binary" "$work_dir/$label.from-jsonl.bin" || fail=1

  "$trace_cli" check "$jsonl" "$binary" >/dev/null || fail=1

  "$trace_cli" stat "$jsonl" > "$work_dir/$label.stat.jsonl.txt"
  "$trace_cli" stat "$binary" > "$work_dir/$label.stat.bin.txt"
  diff "$work_dir/$label.stat.jsonl.txt" "$work_dir/$label.stat.bin.txt" \
    >/dev/null || fail=1

  local jsonl_bytes binary_bytes
  jsonl_bytes=$(wc -c < "$jsonl")
  binary_bytes=$(wc -c < "$binary")
  if [ "$fail" = 0 ]; then
    echo "OK   $label (jsonl ${jsonl_bytes} B, binary ${binary_bytes} B)"
  else
    echo "FAIL $label: transports disagree or invariants violated" >&2
    status=1
  fi
}

run_case vx-random --algo VX --n 4096 --p 512 --seed 3 \
  --adversary random --fail 0.1 --restart 0.4
run_case x-thrashing --algo X --n 2048 --p 256 --seed 5 \
  --adversary thrashing --max-slots 400
run_case w-burst --algo W --n 4096 --p 512 --seed 7 \
  --adversary burst --burst-period 4 --burst-count 64

if [ "$status" = 0 ]; then
  echo "trace round-trip OK: binary and JSONL streams are interconvertible"
fi
exit "$status"
