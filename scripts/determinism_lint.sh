#!/usr/bin/env bash
# Determinism lint for the trace / observability / replay paths.
#
# Replay correctness (docs/replay.md) rests on these sources being
# bit-deterministic: the same schedule must serialize to the same bytes on
# every platform. This script greps them for the usual ways that property
# silently dies:
#
#   - libc `rand(` / `srand(` / `time(` — wall-clock or global-state values
#     leaking into traces;
#   - `std::random_device` constructed with no token — a fresh
#     hardware-entropy draw per run;
#   - iteration over `std::unordered_map` / `std::unordered_set` — hash
#     order differs across standard libraries, so anything emitted from a
#     range-for over one is platform-dependent.
#
# A line that is genuinely fine (e.g. an unordered container used only for
# membership tests, never iterated into output) can be exempted by putting
#     // determinism: ok — <reason>
# on the same line.
set -euo pipefail

cd "$(dirname "$0")/.."

# The paths whose output must be bit-reproducible: traces and metrics
# (src/obs), schedules / repros / checkpoints (src/replay), and the
# audit + static-verify reports (src/analysis) that land in JSONL files.
SCAN_DIRS=(src/obs src/replay src/analysis)

fail=0

scan() {
  local label="$1" pattern="$2"
  local hits
  # -I skips binaries; the trailing grep drops allowlisted lines.
  hits=$(grep -rInE "$pattern" "${SCAN_DIRS[@]}" --include='*.cpp' --include='*.hpp' \
           | grep -v 'determinism: ok' || true)
  if [[ -n "$hits" ]]; then
    echo "determinism-lint: $label"
    echo "$hits" | sed 's/^/  /'
    fail=1
  fi
}

# Word-boundary on the left so strand(/duration( etc. don't trip it.
scan "libc rand()/srand() (non-reproducible PRNG)" '(^|[^[:alnum:]_.:])s?rand\('
scan "time() / wall-clock in serialized paths"      '(^|[^[:alnum:]_.:])time\('
scan "argless std::random_device (fresh entropy per run)" \
     'std::random_device[[:space:]]*([[:alnum:]_]+[[:space:]]*)?(\{\}|\(\))'
# Range-for directly over an unordered container member/variable. This is a
# heuristic: it catches `for (... : foo_)` where foo_ is declared unordered
# in the same file, by flagging every range-for in files that declare one.
for f in $(grep -rIlE 'std::unordered_(map|set|multimap|multiset)' "${SCAN_DIRS[@]}" \
             --include='*.cpp' --include='*.hpp' || true); do
  # Names of unordered members/locals declared in this file.
  names=$(grep -oE 'std::unordered_(map|set|multimap|multiset)<[^;]*>[[:space:]]+[[:alnum:]_]+' "$f" \
            | grep -oE '[[:alnum:]_]+$' | sort -u || true)
  [[ -z "$names" ]] && continue
  for name in $names; do
    hits=$(grep -nE "for[[:space:]]*\(.*:[[:space:]]*${name}[[:space:]]*\)" "$f" \
             | grep -v 'determinism: ok' || true)
    if [[ -n "$hits" ]]; then
      echo "determinism-lint: range-for over std::unordered_* '$name' (hash order is platform-dependent)"
      echo "$hits" | sed "s|^|  $f:|"
      fail=1
    fi
  done
done

if [[ "$fail" -ne 0 ]]; then
  echo
  echo "determinism-lint: FAILED — fix the lines above, or append"
  echo "  // determinism: ok — <reason>"
  echo "to a line whose nondeterminism cannot reach serialized output."
  exit 1
fi
echo "determinism-lint: clean (${SCAN_DIRS[*]})"
