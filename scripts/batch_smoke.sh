#!/usr/bin/env bash
# Batched-backend smoke check: run every batch-capable Write-All algorithm
# at the E1 configuration (fault-free, N = P = 2^16) through writeall_cli
# twice — interpreter and batched backend — and fail if either run misses
# the goal or if any model-visible number (S, S', |F|, slots, sigma)
# differs between the modes. Timing is printed for the log but never
# gated: CI machines are too noisy to assert speedups, and bit-identity
# is the invariant worth a red build.
#
# Usage: scripts/batch_smoke.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir=${1:-build}
cli="$build_dir/examples/writeall_cli"

if [ ! -x "$cli" ]; then
  echo "error: $cli not found — build first:" >&2
  echo "  cmake -B $build_dir -S . && cmake --build $build_dir -j" >&2
  exit 1
fi

n=65536
status=0

for algo in W V X VX; do
  for batch in 0 1; do
    start=$(date +%s%N)
    if ! out=$("$cli" --algo "$algo" --n "$n" --p "$n" --batch "$batch"); then
      echo "FAIL: $algo --batch $batch did not solve (exit $?)" >&2
      echo "$out" >&2
      status=1
      continue
    fi
    elapsed_ms=$(( ($(date +%s%N) - start) / 1000000 ))
    # Everything the model can observe from the summary; timing excluded.
    summary=$(grep -E 'solved|completed S|attempted S|\|F\||parallel time|sigma' \
              <<<"$out")
    if [ "$batch" = 0 ]; then
      interp_summary=$summary
      echo "$algo interp: ${elapsed_ms} ms"
    else
      echo "$algo batch:  ${elapsed_ms} ms"
      if [ "$summary" != "$interp_summary" ]; then
        echo "FAIL: $algo tally diverges between interpreter and batch:" >&2
        diff <(echo "$interp_summary") <(echo "$summary") >&2 || true
        status=1
      fi
    fi
  done
done

if [ "$status" = 0 ]; then
  echo "batch smoke OK: all tallies identical across modes"
fi
exit "$status"
