#!/usr/bin/env bash
# Batched-backend smoke check: run every batch-capable Write-All algorithm
# at the E1 configuration (fault-free, N = P = 2^16) through writeall_cli
# three times — interpreter, batched backend, and batched backend under the
# vEB tree order (--tree-order veb) — and fail if any run misses the goal
# or if any model-visible number (S, S', |F|, slots, sigma) differs
# between the modes. The storage order is model-invisible (DESIGN.md
# §4.10), so the veb row gates on the same tally as the heap rows. Timing
# is printed for the log but never gated: CI machines are too noisy to
# assert speedups, and bit-identity is the invariant worth a red build.
# The X heap-vs-veb batch ratio is logged as one line for the record.
#
# Usage: scripts/batch_smoke.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir=${1:-build}
cli="$build_dir/examples/writeall_cli"

if [ ! -x "$cli" ]; then
  echo "error: $cli not found — build first:" >&2
  echo "  cmake -B $build_dir -S . && cmake --build $build_dir -j" >&2
  exit 1
fi

n=65536
status=0
x_heap_batch_ms=0
x_veb_batch_ms=0

for algo in W V X VX; do
  # mode = "<batch-flag> <tree-order>"; the first mode's tally is the
  # reference every later mode must reproduce exactly.
  for mode in "0 heap" "1 heap" "1 veb"; do
    read -r batch order <<<"$mode"
    start=$(date +%s%N)
    if ! out=$("$cli" --algo "$algo" --n "$n" --p "$n" --batch "$batch" \
               --tree-order "$order"); then
      echo "FAIL: $algo --batch $batch --tree-order $order did not solve" \
           "(exit $?)" >&2
      echo "$out" >&2
      status=1
      continue
    fi
    elapsed_ms=$(( ($(date +%s%N) - start) / 1000000 ))
    # Everything the model can observe from the summary; timing excluded.
    summary=$(grep -E 'solved|completed S|attempted S|\|F\||parallel time|sigma' \
              <<<"$out")
    if [ "$batch" = 0 ]; then
      interp_summary=$summary
      echo "$algo interp ($order): ${elapsed_ms} ms"
    else
      echo "$algo batch ($order):  ${elapsed_ms} ms"
      if [ "$summary" != "$interp_summary" ]; then
        echo "FAIL: $algo tally diverges (batch=$batch order=$order vs" \
             "interpreter/heap):" >&2
        diff <(echo "$interp_summary") <(echo "$summary") >&2 || true
        status=1
      fi
      if [ "$algo" = X ]; then
        if [ "$order" = heap ]; then x_heap_batch_ms=$elapsed_ms
        else x_veb_batch_ms=$elapsed_ms; fi
      fi
    fi
  done
done

# One-line perf record for the CI log (never gated; see the header).
if [ "$x_heap_batch_ms" -gt 0 ] && [ "$x_veb_batch_ms" -gt 0 ]; then
  ratio=$(awk "BEGIN { printf \"%.2f\", $x_veb_batch_ms / $x_heap_batch_ms }")
  echo "X batch heap-vs-veb: heap ${x_heap_batch_ms} ms," \
       "veb ${x_veb_batch_ms} ms, veb/heap ${ratio}"
fi

# Trace bit-identity across modes: the same run traced through the binary
# sink must produce byte-identical streams from the interpreter and the
# batched backend, and the stream must pass trace_cli's invariant audit.
# (Smaller than the tally rows above — the trace gate is about identity,
# not scale.)
trace_cli="$build_dir/examples/trace_cli"
if [ -x "$trace_cli" ]; then
  trace_dir=$(mktemp -d)
  trap 'rm -rf "$trace_dir"' EXIT
  for algo in W V X VX; do
    for batch in 0 1; do
      "$cli" --algo "$algo" --n 4096 --p 4096 --batch "$batch" \
        --trace-out "$trace_dir/$algo-$batch.bin" >/dev/null
    done
    if ! cmp -s "$trace_dir/$algo-0.bin" "$trace_dir/$algo-1.bin"; then
      echo "FAIL: $algo binary trace differs between interpreter and batch" >&2
      "$trace_cli" check "$trace_dir/$algo-0.bin" "$trace_dir/$algo-1.bin" >&2 || true
      status=1
    elif ! "$trace_cli" check "$trace_dir/$algo-0.bin" >/dev/null; then
      echo "FAIL: $algo trace violates stream invariants" >&2
      "$trace_cli" check "$trace_dir/$algo-0.bin" >&2 || true
      status=1
    fi
  done
  [ "$status" = 0 ] && echo "trace smoke OK: binary streams bit-identical across modes"
else
  echo "note: $trace_cli not built — skipping trace bit-identity check"
fi

if [ "$status" = 0 ]; then
  echo "batch smoke OK: all tallies identical across modes"
fi
exit "$status"
